"""The unified engine layer: registry, observables pipeline, Vlasov ensemble."""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.engines import (
    Observables,
    available_engines,
    engine_group_key,
    make_engine,
    pic_observables,
    validate_engine_config,
)
from repro.engines.observables import mode_amplitude, mode_amplitude_rows
from repro.pic.scenarios import available_distributions, available_scenarios, load_distribution
from repro.pic.simulation import TraditionalPIC
from repro.vlasov import VlasovSimulation, vlasov_config_from

VLASOV_EXTRA = {"n_v": 48, "v_min": -0.5, "v_max": 0.5}


@pytest.fixture
def config():
    return SimulationConfig(n_cells=16, particles_per_cell=10, n_steps=4, vth=0.02)


def _vlasov_config(**overrides) -> SimulationConfig:
    defaults = dict(n_cells=32, n_steps=6, vth=0.03, v0=0.2, solver="vlasov",
                    extra=dict(VLASOV_EXTRA))
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestRegistry:
    def test_builtin_families_registered(self):
        assert set(available_engines()) >= {"traditional", "dl", "vlasov"}

    def test_unknown_solver_rejected(self, config):
        with pytest.raises(ValueError, match="unknown solver"):
            make_engine(config.with_updates(solver="quantum"))

    def test_mixed_families_rejected(self, config):
        with pytest.raises(ValueError, match="one family"):
            make_engine([config, _vlasov_config()])

    def test_dl_family_needs_a_solver(self, config):
        with pytest.raises(ValueError, match="DLFieldSolver"):
            make_engine(config.with_updates(solver="dl"))

    def test_group_keys_separate_families(self, config):
        trad = engine_group_key(config)
        assert engine_group_key(config.with_updates(solver="dl")) != trad
        assert engine_group_key(_vlasov_config()) != trad

    def test_vlasov_group_key_includes_velocity_grid(self):
        base = engine_group_key(_vlasov_config())
        assert engine_group_key(_vlasov_config(extra={"n_v": 64})) != base
        assert engine_group_key(
            _vlasov_config(extra={**VLASOV_EXTRA, "v_max": 0.6})
        ) != base
        # particle-only knobs are structurally irrelevant to Vlasov
        assert engine_group_key(_vlasov_config(particles_per_cell=77)) == base
        assert engine_group_key(_vlasov_config(interpolation="ngp")) == base

    def test_validate_rejects_cold_vlasov(self):
        with pytest.raises(ValueError, match="vth > 0"):
            validate_engine_config(_vlasov_config(vth=0.0))

    def test_validate_rejects_unknown_scenario(self, config):
        with pytest.raises(ValueError, match="unknown scenario"):
            validate_engine_config(config.with_updates(scenario="nope"))


class TestRegistryExtensibility:
    """A user-registered family is addressable everywhere at once."""

    @pytest.fixture
    def custom_family(self, monkeypatch, config):
        import repro.engines.base as base

        def build(configs, dl_solver=None, rngs=None):
            from repro.pic.simulation import EnsembleSimulation

            return EnsembleSimulation(configs, rngs=rngs)

        spec = base.EngineSpec(
            name="custom-test-family",
            build=build,
            structural_key=base._pic_structural_key,
            validate=base._pic_validate,
        )
        monkeypatch.setitem(base._ENGINES, spec.name, spec)
        return config.with_updates(solver=spec.name)

    def test_custom_family_gets_store_keys(self, custom_family):
        from repro.service.store import result_key

        key = result_key(custom_family, custom_family.solver)
        assert key.startswith("custom-test-family-")

    def test_custom_family_parses_from_jsonl(self, custom_family):
        from repro.service import parse_request

        req = parse_request(
            {"api_version": "v1", "config": custom_family.to_dict()}
        )
        assert req.solver == "custom-test-family"

    def test_custom_family_served(self, custom_family):
        from repro.service import SimulationService

        with SimulationService(start=False) as service:
            future = service.submit(custom_family)
            service.flush()
            assert future.result(timeout=0).solver == "custom-test-family"


class TestCrossEngineParity:
    """make_engine(traditional) at batch 1 is bitwise the legacy run."""

    @pytest.mark.parametrize("scenario", sorted(available_scenarios()))
    def test_traditional_engine_matches_legacy_pic(self, scenario):
        cfg = SimulationConfig(
            n_cells=16, particles_per_cell=12, n_steps=5, vth=0.02, v0=0.25,
            scenario=scenario, seed=3,
        )
        engine = make_engine(cfg)
        series = engine.run(5).as_arrays()
        legacy = TraditionalPIC(cfg).run(5).as_arrays()
        for name in ("time", "kinetic", "potential", "total", "momentum", "mode1"):
            want = legacy[name] if name == "time" else legacy[name]
            got = series[name] if name == "time" else series[name][:, 0]
            np.testing.assert_array_equal(got, want, err_msg=f"{scenario}:{name}")

    @pytest.mark.parametrize("scenario", sorted(available_distributions()))
    def test_vlasov_rows_match_solo_runs(self, scenario):
        cfgs = [
            _vlasov_config(scenario=scenario, seed=s, vth=0.03 + 0.01 * s, n_steps=6)
            for s in range(3)
        ]
        engine = make_engine(cfgs)
        series = engine.run(6).as_arrays()
        for b, cfg in enumerate(cfgs):
            solo = VlasovSimulation(vlasov_config_from(cfg), f0=load_distribution(cfg))
            solo_series = solo.run(6)
            np.testing.assert_array_equal(engine.f[b], solo.f)
            np.testing.assert_array_equal(engine.efield[b], solo.efield)
            np.testing.assert_array_equal(series["time"], solo_series["time"])
            for name in ("kinetic", "potential", "total", "momentum", "mode1"):
                np.testing.assert_array_equal(
                    series[name][:, b], solo_series[name],
                    err_msg=f"{scenario}:{name} row {b}",
                )

    def test_mixed_scenario_vlasov_batch(self):
        cfgs = [
            _vlasov_config(scenario=name, n_steps=4)
            for name in sorted(available_distributions())
        ]
        engine = make_engine(cfgs)
        series = engine.run(4).as_arrays()
        assert series["mode1"].shape == (5, len(cfgs))
        assert np.all(np.isfinite(series["total"]))


class TestSharedSchema:
    """All three engine families emit the same as_arrays() contract."""

    def _schema(self, obs):
        series = obs.as_arrays()
        return {name: values.shape for name, values in series.items()}

    def test_schema_locked_across_families(self, config, tmp_path):
        from repro.dlpic import DLFieldSolver
        from repro.models.architectures import build_mlp
        from repro.phasespace.binning import PhaseSpaceGrid
        from repro.phasespace.normalization import MinMaxNormalizer

        grid = PhaseSpaceGrid(n_x=16, n_v=8, box_length=config.box_length)
        model = build_mlp(input_size=grid.size, output_size=config.n_cells,
                          hidden_size=8, rng=0)
        dl = DLFieldSolver(
            model, grid, MinMaxNormalizer.from_dict({"minimum": 0.0, "maximum": 50.0})
        )
        engines = [
            make_engine([config, config.with_updates(seed=1)]),
            make_engine(
                [config.with_updates(solver="dl"),
                 config.with_updates(solver="dl", seed=1)],
                dl_solver=dl,
            ),
            make_engine(
                [_vlasov_config(n_cells=config.n_cells, n_steps=config.n_steps),
                 _vlasov_config(n_cells=config.n_cells, n_steps=config.n_steps, vth=0.05)]
            ),
        ]
        schemas = [self._schema(engine.run(config.n_steps)) for engine in engines]
        expected = {
            "time": (config.n_steps + 1,),
            **{name: (config.n_steps + 1, 2)
               for name in ("kinetic", "potential", "total", "momentum", "mode1")},
        }
        for schema in schemas:
            assert schema == expected

    def test_vlasov_solo_run_uses_shared_contract(self):
        """VlasovSimulation.run no longer returns a dict of lists."""
        cfg = _vlasov_config()
        solo = VlasovSimulation(vlasov_config_from(cfg), f0=load_distribution(cfg))
        result = solo.run(3)
        assert isinstance(result, Observables)
        series = result.as_arrays()
        assert sorted(series) == sorted(
            ("time", "kinetic", "potential", "total", "momentum", "mode1")
        )
        for values in series.values():
            assert isinstance(values, np.ndarray)
            assert values.shape == (4,)
        # dict-style indexing still works for existing callers
        np.testing.assert_array_equal(result["mode1"], series["mode1"])


class TestModeAmplitudeRows:
    """The vectorized rows keep the documented scalar-abs bitwise guarantee."""

    @staticmethod
    def _legacy_loop(e, mode=1):
        """The historical per-row Python list comprehension."""
        e = np.atleast_2d(np.asarray(e, dtype=np.float64))
        n = e.shape[-1]
        coeff = np.fft.rfft(e, axis=-1)[..., mode]
        if mode == 0 or (n % 2 == 0 and mode == n // 2):
            return np.array([float(abs(c)) / n for c in coeff])
        return np.array([float(2.0 * abs(c) / n) for c in coeff])

    @pytest.mark.parametrize("mode", [0, 1, 3, 8])
    def test_matches_legacy_loop_bitwise(self, mode):
        rng = np.random.default_rng(42)
        e = rng.normal(size=(32, 16))
        np.testing.assert_array_equal(
            mode_amplitude_rows(e, mode=mode), self._legacy_loop(e, mode=mode)
        )

    def test_matches_scalar_per_row(self):
        rng = np.random.default_rng(7)
        e = rng.normal(size=(8, 24))
        rows = mode_amplitude_rows(e, mode=2)
        for b in range(8):
            assert rows[b] == mode_amplitude(e[b], mode=2)

    def test_mode_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            mode_amplitude_rows(np.zeros((2, 8)), mode=5)


class TestObservablesPipeline:
    def test_reserve_prevents_growth(self, config):
        engine = make_engine(config)
        obs = engine.observables()
        obs.reserve(config.n_steps + 1)
        capacity = obs._capacity if obs.batch is not None else None
        engine.run(config.n_steps, history=obs)
        assert len(obs) == config.n_steps + 1
        assert capacity is None  # allocated lazily at first record

    def test_incremental_recording_grows(self):
        from repro.engines.observables import Frame
        from repro.pic.grid import Grid1D
        from repro.pic.particles import ParticleSet

        grid = Grid1D(8, 2 * np.pi)
        ps = ParticleSet(np.zeros(4), np.full(4, 0.1), charge=-1.0, mass=1.0)
        obs = Observables(pic_observables(), squeeze=True)
        for i in range(200):  # overflow the default capacity
            obs.record_frame(Frame(i, 0.1 * i, grid, np.zeros(8), particles=ps))
        assert len(obs) == 200
        assert obs["kinetic"].shape == (200,)

    def test_duplicate_series_rejected(self):
        from repro.engines.observables import ModeAmplitude

        with pytest.raises(ValueError, match="duplicate"):
            Observables([ModeAmplitude(mode=1), ModeAmplitude(mode=1)])

    def test_single_series_observable_may_return_one_tuple(self):
        from repro.engines.observables import Frame
        from repro.pic.grid import Grid1D

        class OneTuple:
            names = ("one",)

            def measure(self, frame):
                return (np.asarray([frame.time]),)

        grid = Grid1D(8, 2 * np.pi)
        obs = Observables([OneTuple()], squeeze=True)
        for i in range(3):  # first record allocates, later ones hit the fast path
            obs.record_frame(Frame(i, 0.5 * i, grid, np.zeros(8)))
        np.testing.assert_array_equal(obs["one"], [0.0, 0.5, 1.0])

    def test_unknown_series_keyerror(self, config):
        hist = make_engine(config).run(2)
        with pytest.raises(KeyError, match="unknown series"):
            hist["does_not_exist"]

    def test_squeezed_recorder_rejects_batches(self, config):
        engine = make_engine([config, config.with_updates(seed=1)])
        with pytest.raises(ValueError, match="batch"):
            engine.run(1, history=Observables(pic_observables(), squeeze=True))


class TestRetiredShims:
    """History/EnsembleHistory are gone; the error says what to use."""

    def test_history_import_raises_helpfully(self):
        with pytest.raises(ImportError, match="Observables"):
            from repro.pic.diagnostics import History  # noqa: F401

    def test_ensemble_history_import_raises_helpfully(self):
        with pytest.raises(ImportError, match="RunResult"):
            from repro.pic.diagnostics import EnsembleHistory  # noqa: F401

    def test_single_run_recorder_replacement(self, config):
        sim = TraditionalPIC(config)
        hist = Observables(pic_observables(record_fields=True), squeeze=True)
        sim.run(4, history=hist)
        assert len(hist) == 5
        assert hist["kinetic"].shape == (5,)
        assert hist.as_arrays()["fields"].shape == (5, config.n_cells)
        assert isinstance(hist.energy_variation(), float)
        assert isinstance(hist.momentum_drift(), float)

    def test_batched_recorder_replacement(self, config):
        engine = make_engine([config, config.with_updates(seed=1)])
        hist = Observables(pic_observables(record_fields=True))
        engine.run(3, history=hist)
        arrays = hist.as_arrays()
        assert arrays["kinetic"].shape == (4, 2)
        assert arrays["fields"].shape == (4, 2, config.n_cells)
        member = hist.member(1)
        np.testing.assert_array_equal(member["total"], arrays["total"][:, 1])
        assert hist.energy_variation().shape == (2,)

    def test_history_series_match_legacy_layout(self, config):
        """A squeezed single-run record equals the engine's batched record."""
        hist = Observables(pic_observables(), squeeze=True)
        TraditionalPIC(config).run(4, history=hist)
        series = make_engine(config).run(4).as_arrays()
        for name in ("time", "kinetic", "potential", "total", "momentum", "mode1"):
            got = hist.as_arrays()[name]
            want = series[name] if name == "time" else series[name][:, 0]
            np.testing.assert_array_equal(got, want)
