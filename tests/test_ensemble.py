"""Batched ensemble engine: parity, seeding, validation, batched kernels."""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.engines.observables import Observables, pic_observables
from repro.pic.grid import Grid1D
from repro.pic.interpolation import deposit, gather
from repro.pic.poisson import PoissonSolver
from repro.pic.simulation import (
    EnsembleSimulation,
    LiftedFieldSolver,
    PICSimulation,
    TraditionalPIC,
)


@pytest.fixture
def config() -> SimulationConfig:
    return SimulationConfig(n_cells=32, particles_per_cell=40, n_steps=8, vth=0.01, seed=2)


class TestBatchedKernels:
    @pytest.mark.parametrize("order", ["ngp", "cic", "tsc"])
    def test_batched_deposit_matches_rows(self, order):
        grid = Grid1D(16, 4.0)
        rng = np.random.default_rng(0)
        x = rng.uniform(0, grid.length, size=(5, 200))
        w = rng.normal(size=(5, 200))
        batched = deposit(grid, x, w, order=order)
        assert batched.shape == (5, grid.n_cells)
        for b in range(5):
            np.testing.assert_array_equal(batched[b], deposit(grid, x[b], w[b], order=order))

    @pytest.mark.parametrize("order", ["ngp", "cic", "tsc"])
    def test_batched_gather_matches_rows(self, order):
        grid = Grid1D(16, 4.0)
        rng = np.random.default_rng(1)
        x = rng.uniform(0, grid.length, size=(4, 150))
        field = rng.normal(size=(4, grid.n_cells))
        batched = gather(grid, field, x, order=order)
        for b in range(4):
            np.testing.assert_array_equal(batched[b], gather(grid, field[b], x[b], order=order))

    def test_gather_broadcasts_shared_field(self):
        grid = Grid1D(16, 4.0)
        rng = np.random.default_rng(2)
        x = rng.uniform(0, grid.length, size=(3, 50))
        field = rng.normal(size=grid.n_cells)
        batched = gather(grid, field, x)
        for b in range(3):
            np.testing.assert_array_equal(batched[b], gather(grid, field, x[b]))

    def test_deposit_rejects_3d_positions(self):
        grid = Grid1D(16, 4.0)
        with pytest.raises(ValueError, match="positions must be"):
            deposit(grid, np.zeros((2, 3, 4)), 1.0)

    def test_deposit_rejects_non_broadcastable_weights(self):
        grid = Grid1D(16, 4.0)
        with pytest.raises(ValueError, match="do not broadcast"):
            deposit(grid, np.zeros(10), np.ones(7))

    def test_gather_rejects_wrong_batched_field(self):
        grid = Grid1D(16, 4.0)
        with pytest.raises(ValueError, match="field has shape"):
            gather(grid, np.zeros((3, grid.n_cells)), np.zeros((2, 10)))

    @pytest.mark.parametrize("method", ["spectral", "fd", "direct"])
    def test_batched_poisson_matches_rows(self, method):
        grid = Grid1D(32, 2.0 * np.pi)
        rng = np.random.default_rng(3)
        rho = rng.normal(size=(4, grid.n_cells))
        rho -= rho.mean(axis=-1, keepdims=True)
        solver = PoissonSolver(grid, method=method)
        phi, e = solver.solve(rho)
        assert phi.shape == e.shape == (4, grid.n_cells)
        for b in range(4):
            phi_b, e_b = solver.solve(rho[b])
            np.testing.assert_array_equal(phi[b], phi_b)
            np.testing.assert_array_equal(e[b], e_b)


class TestEnsembleConstruction:
    def test_batch_members_match_sequential_bitwise(self, config):
        ens = EnsembleSimulation.from_config(config, batch=3)
        hist = ens.run(8).as_arrays()
        for b in range(3):
            single = TraditionalPIC(config.with_updates(seed=config.seed + b)).run(8).as_arrays()
            for key in ("kinetic", "potential", "total", "momentum", "mode1"):
                np.testing.assert_array_equal(hist[key][:, b], single[key])

    def test_explicit_seeds(self, config):
        ens = EnsembleSimulation.from_config(config, batch=2, seeds=[11, 17])
        assert [cfg.seed for cfg in ens.configs] == [11, 17]

    def test_invalid_batch_rejected(self, config):
        with pytest.raises(ValueError, match="batch"):
            EnsembleSimulation.from_config(config, batch=0)

    def test_seed_count_mismatch_rejected(self, config):
        with pytest.raises(ValueError, match="seeds"):
            EnsembleSimulation.from_config(config, batch=2, seeds=[1])

    def test_empty_config_list_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            EnsembleSimulation(())

    def test_structural_mismatch_rejected(self, config):
        other = config.with_updates(n_cells=64)
        with pytest.raises(ValueError, match="structural"):
            EnsembleSimulation([config, other])

    def test_varying_physics_parameters_allowed(self, config):
        members = [config.with_updates(v0=v0) for v0 in (0.1, 0.2, 0.3)]
        ens = EnsembleSimulation(members)
        assert ens.batch == 3
        ens.run(2)


class TestSeedReproducibility:
    """Satellite regression: same seed => identical, different => distinct."""

    def test_same_seed_identical_histories(self, config):
        a = EnsembleSimulation.from_config(config, batch=4).run(8).as_arrays()
        b = EnsembleSimulation.from_config(config, batch=4).run(8).as_arrays()
        for key in ("time", "kinetic", "potential", "total", "momentum", "mode1"):
            np.testing.assert_array_equal(a[key], b[key])

    def test_different_seeds_differ(self, config):
        a = EnsembleSimulation.from_config(config, batch=2).run(8).as_arrays()
        b = EnsembleSimulation.from_config(
            config.with_updates(seed=config.seed + 100), batch=2
        ).run(8).as_arrays()
        assert not np.array_equal(a["mode1"], b["mode1"])

    def test_rows_with_distinct_seeds_differ(self, config):
        hist = EnsembleSimulation.from_config(config, batch=2).run(8).as_arrays()
        assert not np.array_equal(hist["mode1"][:, 0], hist["mode1"][:, 1])


class TestEnsembleRun:
    def test_history_shapes(self, config):
        hist = EnsembleSimulation.from_config(config, batch=3).run(8)
        series = hist.as_arrays()
        assert series["time"].shape == (9,)
        for key in ("kinetic", "potential", "total", "momentum", "mode1"):
            assert series[key].shape == (9, 3)
        assert len(hist) == 9

    def test_member_extraction(self, config):
        hist = EnsembleSimulation.from_config(config, batch=2).run(4)
        member = hist.member(1)
        assert member["kinetic"].shape == (5,)
        np.testing.assert_array_equal(member["kinetic"], hist.as_arrays()["kinetic"][:, 1])

    def test_energy_variation_and_momentum_drift_per_run(self, config):
        hist = EnsembleSimulation.from_config(config, batch=3).run(8)
        assert hist.energy_variation().shape == (3,)
        assert np.all(hist.energy_variation() < 0.05)
        assert np.max(np.abs(hist.momentum_drift())) < 1e-12

    def test_record_fields(self, config):
        hist = EnsembleSimulation.from_config(config, batch=2).run(
            3, history=Observables(pic_observables(record_fields=True))
        )
        assert hist.as_arrays()["fields"].shape == (4, 2, config.n_cells)

    def test_negative_steps_rejected(self, config):
        with pytest.raises(ValueError):
            EnsembleSimulation.from_config(config, batch=1).run(-1)

    def test_default_n_steps_requires_uniform_members(self, config):
        members = [config, config.with_updates(n_steps=config.n_steps + 5)]
        sim = EnsembleSimulation(members)
        with pytest.raises(ValueError, match="disagree on config.n_steps"):
            sim.run()
        sim.run(2)  # explicit n_steps is always fine

    def test_callback_fires_each_step(self, config):
        sim = EnsembleSimulation.from_config(config, batch=2)
        steps = []
        sim.run(3, callback=lambda s: steps.append(s.step_index))
        assert steps == [1, 2, 3]


class TestLiftedSolver:
    def test_single_run_solver_drives_ensemble(self, config):
        class ZeroField:
            def field(self, x, v):
                assert x.ndim == 1  # the lift hands each row separately
                return np.zeros(config.n_cells)

        ens = EnsembleSimulation.from_config(config, batch=2, field_solver=ZeroField())
        assert isinstance(ens.field_solver, LiftedFieldSolver)
        v0 = ens.particles.v.copy()
        ens.step()
        np.testing.assert_array_equal(ens.particles.v, v0)

    def test_pic_view_keeps_original_solver_reference(self, config):
        class ZeroField:
            def field(self, x, v):
                return np.zeros(config.n_cells)

        solver = ZeroField()
        sim = PICSimulation(config, solver)
        assert sim.field_solver is solver
        sim.step()
        assert sim.step_index == 1


class TestPICViewStateSync:
    def test_external_position_edit_respected(self, config):
        """Writing to the 1-D view must feed back into the next step."""
        sim_a = TraditionalPIC(config)
        sim_b = TraditionalPIC(config)
        shift = np.full(config.n_particles, 0.01)
        sim_a.particles.x = np.mod(sim_a.particles.x + shift, config.box_length)
        sim_b.particles.x = np.mod(sim_b.particles.x + shift, config.box_length)
        sim_a.step()
        sim_b.step()
        np.testing.assert_array_equal(sim_a.particles.x, sim_b.particles.x)
        untouched = TraditionalPIC(config)
        untouched.step()
        assert not np.array_equal(sim_a.particles.x, untouched.particles.x)
