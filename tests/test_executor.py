"""The executor layer: inline default, sharded pool, fault paths."""

from __future__ import annotations

import os
import pickle
import signal
import time

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.engines.base import make_engine
from repro.service import (
    GroupTask,
    GroupTimeoutError,
    InlineExecutor,
    ResultStore,
    ShardedExecutor,
    SimulationService,
)
from repro.service.executor import run_group_task


def _task(*configs: SimulationConfig, phase_space: bool = False) -> GroupTask:
    return GroupTask(
        configs=tuple(cfg.to_dict() for cfg in configs),
        solver=configs[0].solver,
        n_steps=configs[0].n_steps,
        observables=None,
        phase_space=tuple(phase_space for _ in configs),
    )


def _slow_config() -> SimulationConfig:
    """A run long enough (~seconds) to be interrupted mid-group."""
    return SimulationConfig(
        n_cells=64, particles_per_cell=100, n_steps=4000, v0=0.2, vth=0.01, seed=3
    )


def _assert_results_bitwise_equal(a, b) -> None:
    assert a.key == b.key
    assert set(a.series) == set(b.series)
    for name in a.series:
        assert np.array_equal(a.series[name], b.series[name]), name
    assert np.array_equal(a.efield, b.efield)
    for attr in ("final_x", "final_v", "final_f"):
        va, vb = getattr(a, attr), getattr(b, attr)
        assert (va is None) == (vb is None)
        if va is not None:
            assert np.array_equal(va, vb)


class TestInlineExecutor:
    def test_default_service_uses_inline_executor(self, tiny_config):
        with SimulationService(start=False) as service:
            assert isinstance(service.executor, InlineExecutor)
            assert service.stats["workers"] == 1

    def test_run_group_task_matches_engine_run(self, tiny_config):
        outcome = run_group_task(_task(tiny_config, phase_space=True))
        sim = make_engine([tiny_config])
        history = sim.run(tiny_config.n_steps)
        reference = history.as_arrays()
        for name, values in reference.items():
            got = outcome.series[name] if name == "time" else outcome.series[name][:, 0]
            want = values if name == "time" else values[:, 0]
            assert np.array_equal(got, want), name
        assert np.array_equal(outcome.efield, sim.efield)
        assert np.array_equal(outcome.final_x[0], sim.particles.x[0])
        assert np.array_equal(outcome.final_v[0], sim.v_at_integer_time[0])
        assert outcome.final_f[0] is None
        assert outcome.worker_pid == os.getpid()

    def test_group_task_pickles(self, tiny_config):
        task = _task(tiny_config, tiny_config.with_updates(seed=9))
        clone = pickle.loads(pickle.dumps(task))
        assert clone == task
        outcome = run_group_task(clone)
        assert outcome.batch == 2

    def test_inline_stats_count_groups_and_runs(self, tiny_config):
        executor = InlineExecutor()
        executor.submit(_task(tiny_config, tiny_config.with_updates(seed=8)))
        stats = executor.stats()
        assert stats["kind"] == "inline"
        assert stats["groups_executed"] == 1
        assert stats["runs_executed"] == 2
        assert stats["errors"] == 0

    def test_inline_submit_reports_errors_via_future(self, tiny_config):
        executor = InlineExecutor()
        bad = _task(tiny_config.with_updates(solver="dl"))
        future = executor.submit(bad)
        with pytest.raises(ValueError, match="model_dir"):
            future.result()
        assert executor.stats()["errors"] == 1


class TestShardedExecutor:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="workers"):
            ShardedExecutor(0)
        with pytest.raises(ValueError, match="group_timeout"):
            ShardedExecutor(1, group_timeout=0.0)

    def test_sharded_service_bitwise_equals_inline_and_close_drains(
        self, tiny_config
    ):
        mixed = [
            tiny_config,
            tiny_config.with_updates(seed=21, scenario="landau_damping"),
            tiny_config.with_updates(
                solver="mpi", seed=5, extra={"n_ranks": 2}
            ),
        ]
        with SimulationService(start=False) as inline_service:
            inline_futures = [
                inline_service.submit(cfg, phase_space=True) for cfg in mixed
            ]
            inline_service.flush()
            inline_results = [f.result() for f in inline_futures]

        service = SimulationService(max_wait=0.005, workers=2)
        try:
            assert isinstance(service.executor, ShardedExecutor)
            pids = service.executor.warm()
            assert pids and all(pid != os.getpid() for pid in pids)
            futures = [service.submit(cfg, phase_space=True) for cfg in mixed]
            results = [f.result(timeout=120) for f in futures]
        finally:
            service.close()
        for inline_result, sharded_result in zip(inline_results, results):
            _assert_results_bitwise_equal(inline_result, sharded_result)
        pool = service.executor_stats
        assert pool["kind"] == "sharded"
        assert pool["runs_executed"] == len(mixed)
        assert pool["groups_in_flight"] == 0
        assert sum(pool["runs_by_worker"].values()) == len(mixed)
        # Submitting after close names the service state.
        with pytest.raises(RuntimeError, match="SimulationService is closed"):
            service.submit(tiny_config)

    def test_close_resolves_queued_groups(self, tiny_config):
        service = SimulationService(max_wait=30.0, workers=2)
        futures = [
            service.submit(tiny_config.with_updates(seed=100 + i))
            for i in range(3)
        ]
        # max_wait is huge: nothing has flushed yet when close() runs,
        # so close must drain the queued group, not abandon it.
        service.close()
        for future in futures:
            assert future.result(timeout=1).n_steps == tiny_config.n_steps

    def test_worker_killed_mid_group_errors_and_pool_recovers(self, tiny_config):
        executor = ShardedExecutor(1)
        try:
            [pid] = executor.warm()
            doomed = executor.submit(_task(_slow_config()))
            time.sleep(0.3)  # let the worker pick the group up
            os.kill(pid, signal.SIGKILL)
            with pytest.raises(Exception) as excinfo:
                doomed.result(timeout=120)
            assert "process" in str(excinfo.value).lower()
            # The pool replenishes: the next group is served by a
            # freshly spawned worker.
            outcome = executor.submit(_task(tiny_config)).result(timeout=120)
            assert outcome.worker_pid != pid
            stats = executor.stats()
            assert stats["pool_restarts"] >= 1
            assert stats["errors"] >= 1
            assert stats["groups_executed"] == 1
        finally:
            executor.close()

    def test_worker_crash_resolves_service_requests_as_errors(self, tiny_config):
        # workers=1 means inline by design, so hand the service a
        # one-worker pool explicitly to exercise the crash path.
        service = SimulationService(
            max_wait=0.005, executor=ShardedExecutor(1)
        )
        try:
            [pid] = service.executor.warm()
            doomed = service.submit(_slow_config())
            time.sleep(0.3)
            os.kill(pid, signal.SIGKILL)
            with pytest.raises(Exception):
                doomed.result(timeout=120)
            assert service.stats["errors"] == 1
            # The service keeps serving on the replenished pool.
            result = service.submit(tiny_config).result(timeout=120)
            assert result.n_steps == tiny_config.n_steps
        finally:
            executor = service.executor
            service.close()
            executor.close()  # service does not own an injected executor

    def test_group_timeout_resolves_future(self):
        executor = ShardedExecutor(1, group_timeout=0.3)
        try:
            executor.warm()  # spawn cost must not count against the deadline
            future = executor.submit(_task(_slow_config()))
            with pytest.raises(GroupTimeoutError, match="deadline"):
                future.result(timeout=120)
            assert executor.stats()["timeouts"] == 1
        finally:
            executor.close()

    def test_sharded_dl_rehydrates_solver_from_model_dir(
        self, tiny_trained_solver, tiny_solver_config, tmp_path
    ):
        from repro.dlpic.solver import DLFieldSolver

        model_dir = tiny_trained_solver.save(tmp_path / "model")
        loaded = DLFieldSolver.load_auto(model_dir)
        config = tiny_solver_config.with_updates(solver="dl", n_steps=8)
        with SimulationService(start=False, dl_solver=loaded) as inline_service:
            future = inline_service.submit(config)
            inline_service.flush()
            inline_result = future.result()
        service = SimulationService(
            max_wait=0.005, workers=2,
            dl_solver=loaded, model_dir=str(model_dir),
        )
        try:
            sharded_result = service.submit(config).result(timeout=120)
        finally:
            service.close()
        _assert_results_bitwise_equal(inline_result, sharded_result)

    def test_sharded_dl_without_model_dir_is_a_clear_error(
        self, tiny_trained_solver, tiny_solver_config
    ):
        config = tiny_solver_config.with_updates(solver="dl", n_steps=4)
        executor = ShardedExecutor(1)  # no model_dir for the workers
        service = SimulationService(
            max_wait=0.005, dl_solver=tiny_trained_solver, executor=executor
        )
        try:
            future = service.submit(config)
            with pytest.raises(ValueError, match="model_dir"):
                future.result(timeout=120)
        finally:
            service.close()
            executor.close()


class TestSharedStoreAcrossServices:
    def test_two_services_on_one_store_directory_dedup(
        self, tiny_config, tmp_path
    ):
        store_dir = tmp_path / "store"
        with SimulationService(
            start=False, store=ResultStore(directory=store_dir)
        ) as producer:
            future = producer.submit(tiny_config)
            producer.flush()
            produced = future.result()
            assert producer.stats["executed_runs"] == 1
        # A different service (fresh memory tier, like another process)
        # pointed at the same directory serves the repeat from disk.
        with SimulationService(
            start=False, store=ResultStore(capacity=0, directory=store_dir)
        ) as consumer:
            future, status = consumer.submit_with_status(tiny_config)
            assert status == "cached"
            cached = future.result()
            assert consumer.stats["executed_runs"] == 0
            assert cached.from_cache
        for name in produced.series:
            assert np.array_equal(produced.series[name], cached.series[name])
        assert np.array_equal(produced.efield, cached.efield)

    def test_sharded_workers_share_the_disk_store(self, tiny_config, tmp_path):
        store_dir = tmp_path / "store"
        service = SimulationService(
            max_wait=0.005, workers=2,
            store=ResultStore(directory=store_dir),
        )
        try:
            first = service.submit(tiny_config).result(timeout=120)
            assert (store_dir / f"{first.key}.npz").exists()
        finally:
            service.close()
        # Another sharded service on the same directory never executes.
        other = SimulationService(
            max_wait=0.005, workers=2,
            store=ResultStore(capacity=0, directory=store_dir),
        )
        try:
            future, status = other.submit_with_status(tiny_config)
            assert status == "cached"
            assert future.result(timeout=10).from_cache
            assert other.stats["executed_runs"] == 0
        finally:
            other.close()
