"""Experiment harness at the fast preset (full pipeline, tiny scale)."""

import numpy as np
import pytest

from repro.experiments import (
    fast_preset,
    format_table1,
    run_fig4,
    run_fig5,
    run_fig6,
    run_table1,
    train_solvers,
)
from repro.experiments.runs import run_pair, run_traditional


@pytest.fixture(scope="module")
def fast_solvers():
    """Train the fast preset once for the whole module (seconds)."""
    return train_solvers(fast_preset(), cache_dir=None, include_cnn=True)


class TestPreset:
    def test_validation_config_inherits_campaign_resolution(self):
        p = fast_preset()
        cfg = p.validation_config()
        assert cfg.particles_per_cell == p.campaign.base_config.particles_per_cell
        assert cfg.v0 == 0.2
        assert cfg.vth == 0.025

    def test_coldbeam_config(self):
        cfg = fast_preset().coldbeam_config()
        assert cfg.v0 == 0.4
        assert cfg.vth == 0.0

    def test_test2_parameters_unseen(self):
        p = fast_preset()
        assert not set(p.test2_v0) & set(p.campaign.v0_values)


class TestPipeline:
    def test_solvers_trained(self, fast_solvers):
        assert fast_solvers.mlp_solver is not None
        assert fast_solvers.cnn_solver is not None
        assert fast_solvers.mlp_history.n_epochs == fast_preset().mlp_epochs

    def test_split_sizes(self, fast_solvers):
        p = fast_preset()
        assert len(fast_solvers.val) == p.n_val
        assert len(fast_solvers.test) == p.n_test
        assert len(fast_solvers.test2) == p.n_test2

    def test_normalizer_fitted_on_training_inputs(self, fast_solvers):
        norm = fast_solvers.mlp_solver.normalizer
        assert norm.minimum == 0.0  # histograms always contain empty bins
        assert norm.maximum >= fast_solvers.train.inputs.max()

    def test_caching_roundtrip(self, tmp_path):
        p = fast_preset()
        first = train_solvers(p, cache_dir=tmp_path, include_cnn=False)
        second = train_solvers(p, cache_dir=tmp_path, include_cnn=False)
        x = first.test.flat_inputs()[:4]
        xn = first.mlp_solver.normalizer.transform(x)
        np.testing.assert_allclose(
            second.mlp_solver.model.predict(xn), first.mlp_solver.model.predict(xn)
        )
        np.testing.assert_array_equal(second.test.inputs, first.test.inputs)


class TestTable1:
    def test_rows_cover_both_networks_and_sets(self, fast_solvers):
        rows = run_table1(fast_solvers)
        keys = {(r.network, r.test_set) for r in rows}
        assert keys == {("MLP", "I"), ("MLP", "II"), ("CNN", "I"), ("CNN", "II")}

    def test_metrics_sane(self, fast_solvers):
        for row in run_table1(fast_solvers):
            assert 0 < row.mae < 1.0
            assert row.max_error >= row.mae

    def test_formatting(self, fast_solvers):
        text = format_table1(run_table1(fast_solvers))
        assert "MLP" in text and "CNN" in text
        assert "Mean Absolute Error" in text
        assert "Max Error" in text

    def test_mlp_only_formatting(self, fast_solvers):
        from repro.experiments.table1 import Table1Row

        rows = [Table1Row("MLP", "I", 0.001, 0.01)]
        text = format_table1(rows)
        assert "-" in text  # CNN column shows placeholder


class TestRunHelpers:
    def test_run_traditional_outputs(self, fast_solvers):
        cfg = fast_preset().validation_config().with_updates(n_steps=10)
        run = run_traditional(cfg, n_steps=10)
        assert run.series["time"].shape == (11,)
        assert run.final_x.shape == (cfg.n_particles,)

    def test_run_pair_shares_config(self, fast_solvers):
        cfg = fast_preset().validation_config().with_updates(n_steps=5)
        trad, dl = run_pair(cfg, fast_solvers.mlp_solver, n_steps=5)
        assert trad.config == dl.config
        assert trad.label != dl.label


class TestFigures:
    def test_fig4_structure(self, fast_solvers):
        cfg = fast_preset().validation_config().with_updates(n_steps=60)
        r = run_fig4(fast_solvers.mlp_solver, cfg, n_steps=60)
        assert r.gamma_theory == pytest.approx(0.3536, rel=1e-3)
        assert r.time.shape == r.e1_traditional.shape == r.e1_dl.shape
        assert np.isfinite(r.fit_traditional.gamma)
        assert np.isfinite(r.fit_dl.gamma)
        assert "gamma" in r.summary()

    def test_fig4_explicit_window(self, fast_solvers):
        cfg = fast_preset().validation_config().with_updates(n_steps=40)
        r = run_fig4(fast_solvers.mlp_solver, cfg, n_steps=40, fit_window=(1.0, 7.0))
        assert r.fit_traditional.t_start == 1.0
        assert r.fit_dl.t_end == 7.0

    def test_fig5_structure(self, fast_solvers):
        cfg = fast_preset().validation_config().with_updates(n_steps=40)
        r = run_fig5(fast_solvers.mlp_solver, cfg, n_steps=40)
        assert r.energy_variation_traditional < 0.05
        # Traditional PIC conserves momentum to round-off; DL does not.
        assert abs(r.momentum_drift_traditional) < 1e-10
        assert r.total_energy_traditional.shape == r.time.shape
        assert "momentum" in r.summary()

    def test_fig6_structure(self, fast_solvers):
        cfg = fast_preset().coldbeam_config().with_updates(n_steps=40)
        r = run_fig6(fast_solvers.mlp_solver, cfg, n_steps=40)
        assert r.metrics_traditional.max_spread >= 0
        assert r.metrics_dl.max_spread >= 0
        assert "cold-beam" in r.summary()

    def test_fig6_rejects_warm_beams(self, fast_solvers):
        cfg = fast_preset().validation_config()
        with pytest.raises(ValueError, match="cold"):
            run_fig6(fast_solvers.mlp_solver, cfg)
