"""Exhaustive finite-difference gradient verification of every layer."""

import numpy as np
import pytest

from repro.nn.gradcheck import (
    check_layer_input_gradient,
    check_layer_param_gradients,
    numerical_gradient,
)
from repro.nn.layers import (
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    ReLU,
    Sigmoid,
    Tanh,
)

TOL = 1e-6


def _x(shape, seed=0):
    return np.random.default_rng(seed).normal(size=shape)


class TestNumericalGradient:
    def test_quadratic(self):
        x = np.array([1.0, -2.0, 3.0])
        grad = numerical_gradient(lambda z: float(np.sum(z**2)), x)
        np.testing.assert_allclose(grad, 2 * x, atol=1e-6)

    def test_does_not_mutate_input(self):
        x = np.array([1.0, 2.0])
        numerical_gradient(lambda z: float(z.sum()), x)
        np.testing.assert_array_equal(x, [1.0, 2.0])


class TestInputGradients:
    @pytest.mark.parametrize(
        "layer,shape",
        [
            (Dense(6, 4, rng=0), (3, 6)),
            (Dense(1, 1, rng=1), (1, 1)),
            (ReLU(), (4, 5)),
            (Tanh(), (4, 5)),
            (Sigmoid(), (4, 5)),
            (Flatten(), (2, 3, 4)),
            (Conv2D(1, 2, 3, padding="same", rng=2), (2, 1, 6, 6)),
            (Conv2D(3, 2, 3, padding="valid", rng=3), (2, 3, 5, 7)),
            (Conv2D(2, 2, (3, 5), padding="same", rng=4), (1, 2, 6, 8)),
            (Conv2D(1, 1, 1, padding="valid", rng=5), (2, 1, 4, 4)),
            (MaxPool2D(2), (2, 3, 4, 6)),
            (MaxPool2D((1, 2)), (1, 2, 3, 4)),
        ],
        ids=[
            "dense", "dense-1x1", "relu", "tanh", "sigmoid", "flatten",
            "conv-same", "conv-valid", "conv-rect", "conv-1x1",
            "pool-2x2", "pool-1x2",
        ],
    )
    def test_input_gradient_matches_finite_differences(self, layer, shape):
        assert check_layer_input_gradient(layer, _x(shape)) < TOL


class TestParameterGradients:
    @pytest.mark.parametrize(
        "layer,shape",
        [
            (Dense(5, 3, rng=0), (4, 5)),
            (Conv2D(1, 2, 3, padding="same", rng=1), (2, 1, 6, 6)),
            (Conv2D(2, 3, 3, padding="valid", rng=2), (2, 2, 6, 6)),
        ],
        ids=["dense", "conv-same", "conv-valid"],
    )
    def test_param_gradients_match_finite_differences(self, layer, shape):
        errors = check_layer_param_gradients(layer, _x(shape))
        for name, err in errors.items():
            assert err < TOL, f"{name}: {err}"


class TestCompositeGradients:
    def test_mlp_end_to_end_gradient(self):
        """Backprop through a whole Sequential matches finite differences."""
        from repro.nn.losses import MSELoss
        from repro.nn.network import Sequential

        model = Sequential([Dense(4, 8, rng=0), ReLU(), Dense(8, 3, rng=1)])
        loss = MSELoss()
        x = _x((5, 4), seed=6)
        y = _x((5, 3), seed=7)

        def scalar(inp):
            return loss.forward(model.forward(inp), y)

        loss.forward(model.forward(x, training=True), y)
        analytic = model.backward(loss.backward())
        numeric = numerical_gradient(scalar, x.copy())
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)

    def test_cnn_end_to_end_parameter_gradient(self):
        """The first conv kernel's gradient through conv+pool+dense."""
        from repro.nn.losses import MSELoss
        from repro.nn.network import Sequential

        conv = Conv2D(1, 2, 3, padding="same", rng=0)
        model = Sequential([conv, ReLU(), MaxPool2D(2), Flatten(), Dense(2 * 2 * 2, 3, rng=1)])
        loss = MSELoss()
        x = _x((2, 1, 4, 4), seed=8)
        y = _x((2, 3), seed=9)

        model.zero_grad()
        loss.forward(model.forward(x, training=True), y)
        model.backward(loss.backward())
        analytic = conv.grads["W"].copy()

        def scalar(w):
            conv.params["W"][...] = w
            return loss.forward(model.forward(x), y)

        w0 = conv.params["W"].copy()
        numeric = numerical_gradient(scalar, w0.copy())
        conv.params["W"][...] = w0
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)
