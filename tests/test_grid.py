"""Grid1D geometry and spectral bookkeeping."""

import numpy as np
import pytest

from repro.pic.grid import Grid1D


class TestGeometry:
    def test_dx(self):
        assert Grid1D(10, 2.0).dx == pytest.approx(0.2)

    def test_nodes_start_at_zero(self):
        grid = Grid1D(8, 4.0)
        assert grid.nodes[0] == 0.0
        assert np.allclose(np.diff(grid.nodes), grid.dx)

    def test_last_node_inside_domain(self):
        grid = Grid1D(8, 4.0)
        assert grid.nodes[-1] < grid.length

    def test_cell_centers_offset_half(self):
        grid = Grid1D(4, 2.0)
        assert np.allclose(grid.cell_centers - grid.nodes, 0.5 * grid.dx)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            Grid1D(1, 1.0)
        with pytest.raises(ValueError):
            Grid1D(8, 0.0)


class TestWavenumbers:
    def test_fundamental(self):
        grid = Grid1D(16, 2.0 * np.pi)
        assert grid.fundamental_wavenumber == pytest.approx(1.0)

    def test_rfft_wavenumbers_multiples_of_fundamental(self):
        grid = Grid1D(16, 2.0 * np.pi / 3.06)
        k = grid.rfft_wavenumbers()
        assert k[0] == 0.0
        assert k[1] == pytest.approx(3.06)
        assert np.allclose(k, 3.06 * np.arange(9))

    def test_full_wavenumbers_match_fft_convention(self):
        grid = Grid1D(8, 1.0)
        assert np.allclose(grid.wavenumbers(), 2 * np.pi * np.fft.fftfreq(8, d=grid.dx))


class TestWrap:
    def test_wrap_into_domain(self):
        grid = Grid1D(8, 2.0)
        x = np.array([-0.5, 0.0, 1.9, 2.0, 2.5, -2.0])
        wrapped = grid.wrap(x)
        assert np.all(wrapped >= 0.0)
        assert np.all(wrapped < grid.length)

    def test_wrap_preserves_interior_points(self):
        grid = Grid1D(8, 2.0)
        x = np.array([0.1, 1.0, 1.99])
        assert np.allclose(grid.wrap(x), x)

    def test_wrap_is_periodic(self):
        grid = Grid1D(8, 2.0)
        x = np.linspace(0, 1.9, 7)
        assert np.allclose(grid.wrap(x + 3 * grid.length), x)
