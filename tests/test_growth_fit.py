"""Exponential growth-rate fitting from E1(t) series."""

import numpy as np
import pytest

from repro.theory.growth import GrowthFit, fit_growth_rate


def _synthetic_series(gamma=0.35, noise_floor=1e-4, saturation=0.1, dt=0.2, n=200, seed=0):
    """Noise floor -> exponential growth -> saturation, like Fig. 4."""
    t = np.arange(n) * dt
    exp = noise_floor * np.exp(gamma * t)
    rng = np.random.default_rng(seed)
    noise = noise_floor * (1 + 0.1 * rng.normal(size=n))
    return t, np.minimum(np.maximum(exp, noise), saturation)


class TestExactRecovery:
    def test_pure_exponential(self):
        t = np.linspace(0, 10, 50)
        a = 1e-3 * np.exp(0.4 * t)
        fit = fit_growth_rate(t, a, t_start=0.0, t_end=10.0)
        assert fit.gamma == pytest.approx(0.4, rel=1e-10)
        assert fit.r_squared == pytest.approx(1.0)

    def test_intercept(self):
        t = np.linspace(0, 5, 20)
        a = 2e-3 * np.exp(0.3 * t)
        fit = fit_growth_rate(t, a, t_start=0.0, t_end=5.0)
        assert np.exp(fit.intercept) == pytest.approx(2e-3, rel=1e-8)

    def test_decaying_signal_gives_negative_gamma(self):
        t = np.linspace(0, 5, 30)
        a = 1e-2 * np.exp(-0.2 * t)
        fit = fit_growth_rate(t, a, t_start=0.0, t_end=5.0)
        assert fit.gamma == pytest.approx(-0.2, rel=1e-8)


class TestAutomaticWindow:
    def test_detects_linear_phase(self):
        t, a = _synthetic_series()
        fit = fit_growth_rate(t, a)
        assert fit.gamma == pytest.approx(0.35, rel=0.1)
        assert fit.r_squared > 0.95

    def test_window_avoids_noise_floor_and_saturation(self):
        t, a = _synthetic_series()
        fit = fit_growth_rate(t, a)
        # Noise floor ends around t ~ ln(3)/0.35 ~ 3.1; saturation
        # reaches 0.1 at t ~ ln(1e3)/0.35 ~ 19.7.
        assert fit.t_start > 1.0
        assert fit.t_end < 22.0

    def test_flat_series_falls_back_to_first_half(self):
        t = np.linspace(0, 10, 40)
        a = np.full(40, 1e-3)
        fit = fit_growth_rate(t, a)
        assert fit.gamma == pytest.approx(0.0, abs=1e-10)

    def test_explicit_window_overrides(self):
        # Exponential seeded far below the noise floor: t in [0, 4] is
        # genuinely flat noise.
        t = np.arange(200) * 0.2
        rng = np.random.default_rng(0)
        noise = 1e-3 * (1 + 0.1 * rng.normal(size=200))
        a = np.maximum(1e-5 * np.exp(0.35 * t), noise)
        fit = fit_growth_rate(t, a, t_start=0.0, t_end=4.0)
        # Window restricted to the noise floor: slope near zero.
        assert abs(fit.gamma) < 0.05
        assert fit.t_start == 0.0
        assert fit.t_end == 4.0


class TestRelativeError:
    def test_relative_error(self):
        fit = GrowthFit(gamma=0.3, intercept=0.0, r_squared=1.0,
                        t_start=0.0, t_end=1.0, n_points=10)
        assert fit.relative_error(0.354) == pytest.approx(abs(0.3 - 0.354) / 0.354)

    def test_zero_theory_rejected(self):
        fit = GrowthFit(gamma=0.3, intercept=0.0, r_squared=1.0,
                        t_start=0.0, t_end=1.0, n_points=10)
        with pytest.raises(ValueError):
            fit.relative_error(0.0)


class TestValidation:
    def test_mismatched_shapes(self):
        with pytest.raises(ValueError):
            fit_growth_rate(np.zeros(4), np.ones(5))

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            fit_growth_rate(np.arange(3.0), np.ones(3))

    def test_nonpositive_amplitudes_rejected(self):
        with pytest.raises(ValueError):
            fit_growth_rate(np.arange(5.0), np.array([1.0, 2.0, 0.0, 3.0, 4.0]))

    def test_empty_window_rejected(self):
        t = np.linspace(0, 10, 20)
        a = np.exp(t)
        with pytest.raises(ValueError, match="window"):
            fit_growth_rate(t, a, t_start=20.0, t_end=30.0)
