"""Weight initializers."""

import numpy as np
import pytest

from repro.nn.initializers import (
    get_initializer,
    glorot_uniform,
    he_normal,
    zeros_init,
)


class TestGlorot:
    def test_dense_limit(self):
        w = glorot_uniform((100, 50), rng=0)
        limit = np.sqrt(6.0 / 150)
        assert np.all(np.abs(w) <= limit)
        assert np.abs(w).max() > 0.8 * limit  # actually fills the range

    def test_conv_fan_includes_receptive_field(self):
        w = glorot_uniform((8, 4, 3, 3), rng=1)
        limit = np.sqrt(6.0 / (4 * 9 + 8 * 9))
        assert np.all(np.abs(w) <= limit)

    def test_roughly_zero_mean(self):
        w = glorot_uniform((200, 200), rng=2)
        assert abs(w.mean()) < 0.005

    def test_seeded_determinism(self):
        np.testing.assert_array_equal(glorot_uniform((5, 5), rng=7), glorot_uniform((5, 5), rng=7))

    def test_unsupported_shape(self):
        with pytest.raises(ValueError):
            glorot_uniform((3,), rng=0)


class TestHeNormal:
    def test_std_matches_fan_in(self):
        w = he_normal((1000, 100), rng=3)
        assert w.std() == pytest.approx(np.sqrt(2.0 / 1000), rel=0.05)

    def test_conv_fan_in(self):
        w = he_normal((16, 8, 3, 3), rng=4)
        assert w.std() == pytest.approx(np.sqrt(2.0 / (8 * 9)), rel=0.1)


class TestZeros:
    def test_zeros(self):
        np.testing.assert_array_equal(zeros_init((3, 4)), np.zeros((3, 4)))


class TestRegistry:
    @pytest.mark.parametrize("name", ["glorot_uniform", "he_normal", "zeros"])
    def test_lookup(self, name):
        assert callable(get_initializer(name))

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown initializer"):
            get_initializer("orthogonal")
