"""Particle-grid interpolation: conservation, exactness, adjointness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pic.grid import Grid1D
from repro.pic.interpolation import charge_density, deposit, gather

ORDERS = ["ngp", "cic", "tsc"]


@pytest.fixture
def grid() -> Grid1D:
    return Grid1D(16, 4.0)


class TestDepositConservation:
    @pytest.mark.parametrize("order", ORDERS)
    def test_total_charge_conserved(self, grid, order):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, grid.length, 500)
        w = rng.normal(size=500)
        rho = deposit(grid, x, w, order=order)
        assert rho.sum() * grid.dx == pytest.approx(w.sum(), rel=1e-12)

    @pytest.mark.parametrize("order", ORDERS)
    def test_scalar_weight_broadcast(self, grid, order):
        x = np.linspace(0.1, 3.9, 50)
        rho = deposit(grid, x, 2.0, order=order)
        assert rho.sum() * grid.dx == pytest.approx(100.0, rel=1e-12)

    @pytest.mark.parametrize("order", ORDERS)
    def test_deposit_is_linear_in_weights(self, grid, order):
        rng = np.random.default_rng(1)
        x = rng.uniform(0, grid.length, 100)
        w1 = rng.normal(size=100)
        w2 = rng.normal(size=100)
        combined = deposit(grid, x, w1 + 2.0 * w2, order=order)
        separate = deposit(grid, x, w1, order=order) + 2.0 * deposit(grid, x, w2, order=order)
        np.testing.assert_allclose(combined, separate, atol=1e-12)

    @pytest.mark.parametrize("order", ORDERS)
    def test_positions_outside_domain_are_wrapped(self, grid, order):
        x = np.array([0.5, 0.5 + grid.length, 0.5 - grid.length])
        rho = deposit(grid, x, 1.0, order=order)
        single = deposit(grid, np.array([0.5]), 3.0, order=order)
        np.testing.assert_allclose(rho, single, atol=1e-12)


class TestDepositPlacement:
    def test_ngp_puts_particle_on_nearest_node(self, grid):
        # x = 0.3 with dx = 0.25: nearest node is index 1 (x = 0.25).
        rho = deposit(grid, np.array([0.3]), 1.0, order="ngp")
        assert rho[1] == pytest.approx(1.0 / grid.dx)
        assert np.count_nonzero(rho) == 1

    def test_ngp_wraps_to_node_zero_near_right_edge(self, grid):
        x = np.array([grid.length - 0.25 * grid.dx])
        rho = deposit(grid, x, 1.0, order="ngp")
        assert rho[0] == pytest.approx(1.0 / grid.dx)

    def test_cic_splits_linearly(self, grid):
        # Particle 30% into cell 2.
        x = np.array([(2 + 0.3) * grid.dx])
        rho = deposit(grid, x, 1.0, order="cic")
        assert rho[2] == pytest.approx(0.7 / grid.dx)
        assert rho[3] == pytest.approx(0.3 / grid.dx)
        assert np.count_nonzero(rho) == 2

    def test_cic_on_node_is_pointlike(self, grid):
        rho = deposit(grid, np.array([3 * grid.dx]), 1.0, order="cic")
        assert rho[3] == pytest.approx(1.0 / grid.dx)
        assert np.count_nonzero(rho) == 1

    def test_tsc_spreads_over_three_nodes(self, grid):
        rho = deposit(grid, np.array([3 * grid.dx]), 1.0, order="tsc")
        assert np.count_nonzero(rho) == 3
        assert rho[3] == pytest.approx(0.75 / grid.dx)
        assert rho[2] == pytest.approx(0.125 / grid.dx)
        assert rho[4] == pytest.approx(0.125 / grid.dx)

    def test_unknown_order_rejected(self, grid):
        with pytest.raises(ValueError, match="unknown interpolation"):
            deposit(grid, np.array([0.1]), 1.0, order="cubic")


class TestGather:
    @pytest.mark.parametrize("order", ORDERS)
    def test_constant_field_gathered_exactly(self, grid, order):
        field = np.full(grid.n_cells, 3.25)
        x = np.random.default_rng(2).uniform(0, grid.length, 200)
        np.testing.assert_allclose(gather(grid, field, x, order=order), 3.25, atol=1e-12)

    def test_cic_linear_field_exact_between_nodes(self, grid):
        # CIC reproduces linear functions exactly away from the wrap point.
        field = 2.0 * grid.nodes
        x = np.linspace(0.3 * grid.dx, grid.length - 1.5 * grid.dx, 40)
        np.testing.assert_allclose(gather(grid, field, x, order="cic"), 2.0 * x, atol=1e-12)

    def test_ngp_gather_is_piecewise_constant(self, grid):
        field = np.arange(grid.n_cells, dtype=float)
        x = np.array([0.3])  # nearest node 1
        assert gather(grid, field, x, order="ngp")[0] == 1.0

    def test_gather_validates_field_shape(self, grid):
        with pytest.raises(ValueError, match="field has shape"):
            gather(grid, np.zeros(5), np.array([0.1]))

    def test_gather_unknown_order(self, grid):
        with pytest.raises(ValueError, match="unknown interpolation"):
            gather(grid, np.zeros(grid.n_cells), np.array([0.1]), order="q")

    @pytest.mark.parametrize("order", ORDERS)
    def test_gather_deposit_adjointness(self, grid, order):
        """sum_p w_p F(x_p) == dx * sum_j F_j * deposit(w)_j.

        Gather and deposit use the same shape functions, which is the
        algebraic root of momentum conservation in the PIC cycle.
        """
        rng = np.random.default_rng(3)
        x = rng.uniform(0, grid.length, 300)
        w = rng.normal(size=300)
        field = rng.normal(size=grid.n_cells)
        lhs = np.sum(w * gather(grid, field, x, order=order))
        rhs = grid.dx * np.sum(field * deposit(grid, x, w, order=order))
        assert lhs == pytest.approx(rhs, rel=1e-10, abs=1e-10)


class TestChargeDensity:
    def test_neutral_plasma_has_zero_mean_density(self, grid):
        rng = np.random.default_rng(4)
        n = 800
        x = rng.uniform(0, grid.length, n)
        q_p = -grid.length / n
        rho = charge_density(grid, x, q_p, order="cic", background=1.0)
        assert rho.mean() == pytest.approx(0.0, abs=1e-12)

    def test_background_shifts_density_uniformly(self, grid):
        x = np.array([1.0])
        rho0 = charge_density(grid, x, -0.1, background=0.0)
        rho1 = charge_density(grid, x, -0.1, background=2.5)
        np.testing.assert_allclose(rho1 - rho0, 2.5, atol=1e-12)


class TestDepositProperties:
    @given(
        positions=st.lists(
            st.floats(min_value=-10.0, max_value=10.0, allow_nan=False), min_size=1, max_size=60
        ),
        order=st.sampled_from(ORDERS),
    )
    @settings(max_examples=60, deadline=None)
    def test_mass_conservation_property(self, positions, order):
        grid = Grid1D(12, 3.0)
        x = np.asarray(positions)
        rho = deposit(grid, x, 1.0, order=order)
        assert rho.sum() * grid.dx == pytest.approx(len(positions), rel=1e-9)

    @given(
        shift=st.integers(min_value=-24, max_value=24),
        order=st.sampled_from(ORDERS),
    )
    @settings(max_examples=40, deadline=None)
    def test_translation_equivariance_by_whole_cells(self, shift, order):
        """Shifting particles by k cells rolls the deposited density by k."""
        grid = Grid1D(12, 3.0)
        rng = np.random.default_rng(5)
        x = rng.uniform(0, grid.length, 50)
        rho = deposit(grid, x, 1.0, order=order)
        rho_shifted = deposit(grid, x + shift * grid.dx, 1.0, order=order)
        np.testing.assert_allclose(rho_shifted, np.roll(rho, shift), atol=1e-9)
