"""Kernel backend tier: registry, chunking, and the engine parity matrix.

The contract under test is the one the backends are built on: every
batch row of an engine is independent, so a backend that executes rows
in contiguous chunks (``threaded``) or through a JIT kernel with the
reference op ordering (``numba``) must reproduce the ``numpy``
reference **bit for bit** in every dtype tier.  The matrix below runs
scenario x family x backend x dtype and asserts exactly that, plus the
float32-vs-float64 tolerance band and threaded determinism.

The container running CI's fast leg may expose a single core, in which
case ``ThreadedBackend()`` defaults to one worker and falls through to
the reference slab — so the matrix injects ``ThreadedBackend(max_workers=3)``
explicitly to force real chunking regardless of the host.  When numba
is absent ``NumbaBackend`` degrades to the reference slab; the parity
rows still run (and hold trivially), keeping the matrix shape stable
across both CI legs.
"""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.dlpic import DLEnsemble, DLFieldSolver
from repro.kernels import (
    KERNEL_BACKEND_NAMES,
    KernelBackend,
    NumbaBackend,
    ThreadedBackend,
    available_backends,
    backend_available,
    backend_unavailable_reason,
    get_backend,
    resolve_backend,
)
from repro.kernels.numba_kernels import NUMBA_AVAILABLE
from repro.models.architectures import build_mlp
from repro.phasespace.binning import PhaseSpaceGrid
from repro.phasespace.normalization import MinMaxNormalizer
from repro.pic.simulation import EnsembleSimulation
from repro.vlasov.ensemble import VlasovEnsemble

BATCH = 4
STEPS = 6


# -- registry and config agreement --------------------------------------


class TestRegistry:
    def test_backend_names_are_the_config_literals(self):
        # config.py validates against a literal triple (it cannot import
        # repro.kernels without a cycle); this pins the two in sync.
        assert KERNEL_BACKEND_NAMES == ("numpy", "threaded", "numba")
        for name in KERNEL_BACKEND_NAMES:
            SimulationConfig(backend=name)  # accepted
        with pytest.raises(ValueError, match="backend"):
            SimulationConfig(backend="cuda")

    def test_get_backend_returns_singletons(self):
        for name in KERNEL_BACKEND_NAMES:
            assert get_backend(name) is get_backend(name)
            assert get_backend(name).name == name

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            get_backend("cuda")

    def test_resolve_backend(self):
        assert resolve_backend(None).name == "numpy"
        assert resolve_backend("threaded") is get_backend("threaded")
        inst = ThreadedBackend(max_workers=2)
        assert resolve_backend(inst) is inst

    def test_availability_probes(self):
        assert backend_available("numpy")
        assert backend_unavailable_reason("numpy") is None
        assert backend_available("numba") == NUMBA_AVAILABLE
        if not NUMBA_AVAILABLE:
            assert "numba" in backend_unavailable_reason("numba")
        assert set(available_backends()) <= set(KERNEL_BACKEND_NAMES)
        assert "numpy" in available_backends()

    def test_numba_backend_degrades_without_numba(self):
        backend = NumbaBackend()
        if not NUMBA_AVAILABLE:
            assert backend.jit is None
        out = []
        backend.run_rows(3, lambda lo, hi: out.append((lo, hi)))
        assert out == [(0, 3)]  # reference slab either way


# -- ThreadedBackend chunking --------------------------------------------


class TestThreadedBackend:
    def _bounds(self, backend, n_rows, multiple=1):
        seen = []
        backend.run_rows(n_rows, lambda lo, hi: seen.append((lo, hi)), multiple=multiple)
        return sorted(seen)

    def test_chunks_cover_every_row_exactly_once(self):
        bounds = self._bounds(ThreadedBackend(max_workers=3), 10)
        assert bounds[0][0] == 0 and bounds[-1][1] == 10
        for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
            assert hi == lo
        assert len(bounds) > 1  # actually chunked

    def test_chunk_boundaries_respect_multiple(self):
        bounds = self._bounds(ThreadedBackend(max_workers=3), 40, multiple=16)
        for lo, hi in bounds:
            assert lo % 16 == 0
            assert hi % 16 == 0 or hi == 40
        assert bounds[0][0] == 0 and bounds[-1][1] == 40

    def test_single_unit_falls_through_inline(self):
        # One row (or one multiple-sized unit) cannot be split: the
        # backend must run it as the plain reference slab.
        assert self._bounds(ThreadedBackend(max_workers=3), 1) == [(0, 1)]
        assert self._bounds(ThreadedBackend(max_workers=3), 12, multiple=16) == [(0, 12)]
        assert self._bounds(ThreadedBackend(max_workers=1), 8) == [(0, 8)]

    def test_worker_exceptions_propagate(self):
        def boom(lo, hi):
            raise RuntimeError("kernel failed")

        with pytest.raises(RuntimeError, match="kernel failed"):
            ThreadedBackend(max_workers=3).run_rows(8, boom)

    def test_parallel_flags(self):
        assert not KernelBackend().parallel
        assert ThreadedBackend(max_workers=2).parallel


# -- engine parity matrix ------------------------------------------------


def _dl_solver(config):
    grid = PhaseSpaceGrid(n_x=16, n_v=8, box_length=config.box_length)
    model = build_mlp(
        input_size=grid.size, output_size=config.n_cells, hidden_size=24, rng=0
    )
    normalizer = MinMaxNormalizer.from_dict({"minimum": 0.0, "maximum": 60.0})
    return DLFieldSolver(model, grid, normalizer, input_kind="flat")


def _traditional_config(scenario):
    return SimulationConfig(
        scenario=scenario, n_cells=32, particles_per_cell=30, n_steps=STEPS,
        vth=0.01, v0=0.2, seed=3,
    )


def _vlasov_config(scenario):
    return SimulationConfig(
        solver="vlasov", scenario=scenario, n_cells=32, n_steps=STEPS,
        vth=0.25, v0=1.0, seed=1, extra={"n_v": 48, "v_min": -6.0, "v_max": 6.0},
    )


def _build(family, scenario, dtype, backend_name):
    """Build + run one matrix cell; return its observable state arrays."""
    if family == "traditional":
        config = _traditional_config(scenario).with_updates(
            dtype=dtype, backend=backend_name
        )
        ens = EnsembleSimulation.from_config(config, BATCH)
    elif family == "vlasov":
        config = _vlasov_config(scenario).with_updates(dtype=dtype, backend=backend_name)
        ens = VlasovEnsemble([config.with_updates(seed=config.seed + b) for b in range(BATCH)])
    else:  # dl
        config = _traditional_config(scenario).with_updates(
            dtype=dtype, backend=backend_name
        )
        ens = DLEnsemble.from_config(config, BATCH, _dl_solver(config))
    if backend_name == "threaded":
        # Force real chunking even on a single-core host (where the
        # default worker count is 1 and the backend falls through).
        forced = ThreadedBackend(max_workers=3)
        ens._backend = forced
        if family == "dl":
            ens.field_solver.set_kernel_backend(forced)
        elif family == "traditional":
            ens.field_solver.backend = forced
    ens.run(STEPS)
    if family == "vlasov":
        return {"f": ens.f.copy(), "efield": ens.efield.copy()}
    return {
        "x": ens.particles.x.copy(),
        "v": ens.particles.v.copy(),
        "efield": ens.efield.copy(),
    }


FAMILIES = ("traditional", "vlasov", "dl")
SCENARIOS = ("two_stream", "landau_damping")
ALT_BACKENDS = ("threaded", "numba")


@pytest.mark.parametrize("scenario", SCENARIOS)
@pytest.mark.parametrize("family", FAMILIES)
class TestParityMatrix:
    @pytest.mark.parametrize("backend_name", ALT_BACKENDS)
    @pytest.mark.parametrize("dtype", ("float64", "float32"))
    def test_backend_matches_numpy_reference_bitwise(
        self, family, scenario, backend_name, dtype
    ):
        from repro.engines.base import get_engine_spec

        if backend_name not in get_engine_spec(family).backends:
            pytest.skip(f"{family} does not register the {backend_name} backend")
        reference = _build(family, scenario, dtype, "numpy")
        candidate = _build(family, scenario, dtype, backend_name)
        for key, ref in reference.items():
            assert candidate[key].dtype == ref.dtype
            assert np.array_equal(candidate[key], ref), (
                f"{family}/{scenario}/{dtype}: {backend_name} diverged from "
                f"the numpy reference on {key!r}"
            )

    def test_float32_tracks_float64_within_tolerance(self, family, scenario):
        ref64 = _build(family, scenario, "float64", "numpy")
        ref32 = _build(family, scenario, "float32", "numpy")
        for key, lo in ref32.items():
            assert lo.dtype == np.float32
            hi = ref64[key]
            assert hi.dtype == np.float64
            assert np.all(np.isfinite(lo))
            scale = max(1.0, float(np.max(np.abs(hi))))
            diff = float(np.max(np.abs(lo.astype(np.float64) - hi)))
            # Short runs in single precision stay within a loose
            # single-precision band of the double trajectory.
            assert diff <= 1e-3 * scale, (
                f"{family}/{scenario}: float32 {key!r} drifted {diff:g} "
                f"from float64 (scale {scale:g})"
            )

    def test_threaded_is_deterministic(self, family, scenario):
        first = _build(family, scenario, "float32", "threaded")
        second = _build(family, scenario, "float32", "threaded")
        for key, ref in first.items():
            assert np.array_equal(second[key], ref)
