"""Layer forward semantics (gradients are covered in test_gradcheck)."""

import numpy as np
import pytest

from repro.nn.layers import (
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    MaxPool2D,
    ReLU,
    Sigmoid,
    Tanh,
)


class TestDense:
    def test_affine_map(self):
        layer = Dense(2, 3, rng=0)
        layer.params["W"][...] = np.array([[1.0, 0.0, 2.0], [0.0, 1.0, -1.0]])
        layer.params["b"][...] = np.array([0.5, -0.5, 0.0])
        out = layer.forward(np.array([[1.0, 2.0]]))
        np.testing.assert_allclose(out, [[1.5, 1.5, 0.0]])

    def test_batch_independence(self):
        layer = Dense(4, 2, rng=1)
        x = np.random.default_rng(0).normal(size=(6, 4))
        full = layer.forward(x)
        row = layer.forward(x[2:3])
        np.testing.assert_allclose(full[2:3], row)

    def test_parameter_count(self):
        assert Dense(10, 7, rng=0).n_parameters == 10 * 7 + 7

    def test_wrong_input_width_rejected(self):
        with pytest.raises(ValueError):
            Dense(3, 2, rng=0).forward(np.zeros((1, 5)))

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            Dense(0, 2, rng=0)

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            Dense(2, 2, rng=0).backward(np.zeros((1, 2)))

    def test_zero_grad_resets(self):
        layer = Dense(2, 2, rng=0)
        layer.forward(np.ones((1, 2)), training=True)
        layer.backward(np.ones((1, 2)))
        assert np.any(layer.grads["W"] != 0)
        layer.zero_grad()
        assert np.all(layer.grads["W"] == 0)

    def test_gradients_accumulate_across_backwards(self):
        layer = Dense(2, 2, rng=0)
        layer.forward(np.ones((1, 2)), training=True)
        layer.backward(np.ones((1, 2)))
        g1 = layer.grads["W"].copy()
        layer.forward(np.ones((1, 2)), training=True)
        layer.backward(np.ones((1, 2)))
        np.testing.assert_allclose(layer.grads["W"], 2 * g1)


class TestActivations:
    def test_relu_clips_negative(self):
        out = ReLU().forward(np.array([[-1.0, 0.0, 2.0]]))
        np.testing.assert_allclose(out, [[0.0, 0.0, 2.0]])

    def test_relu_backward_masks(self):
        layer = ReLU()
        layer.forward(np.array([[-1.0, 3.0]]), training=True)
        grad = layer.backward(np.array([[5.0, 5.0]]))
        np.testing.assert_allclose(grad, [[0.0, 5.0]])

    def test_tanh_matches_numpy(self):
        x = np.linspace(-2, 2, 7).reshape(1, -1)
        np.testing.assert_allclose(Tanh().forward(x), np.tanh(x))

    def test_sigmoid_range_and_midpoint(self):
        out = Sigmoid().forward(np.array([[-50.0, 0.0, 50.0]]))
        np.testing.assert_allclose(out, [[0.0, 0.5, 1.0]], atol=1e-12)

    def test_sigmoid_stable_for_large_negative(self):
        out = Sigmoid().forward(np.array([[-1e4]]))
        assert np.isfinite(out).all()

    def test_activation_has_no_parameters(self):
        assert ReLU().n_parameters == 0
        assert Tanh().n_parameters == 0


class TestDropout:
    def test_identity_in_eval_mode(self):
        x = np.random.default_rng(0).normal(size=(4, 6))
        np.testing.assert_array_equal(Dropout(0.5, rng=0).forward(x, training=False), x)

    def test_zero_rate_is_identity_in_training(self):
        x = np.random.default_rng(1).normal(size=(4, 6))
        np.testing.assert_array_equal(Dropout(0.0, rng=0).forward(x, training=True), x)

    def test_training_mode_zeroes_and_rescales(self):
        x = np.ones((2000,)).reshape(1, -1)
        out = Dropout(0.5, rng=3).forward(x, training=True)
        kept = out[out != 0]
        np.testing.assert_allclose(kept, 2.0)
        assert 0.4 < (out != 0).mean() < 0.6

    def test_backward_uses_same_mask(self):
        layer = Dropout(0.5, rng=4)
        x = np.ones((1, 100))
        out = layer.forward(x, training=True)
        grad = layer.backward(np.ones_like(x))
        np.testing.assert_array_equal(grad != 0, out != 0)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestFlatten:
    def test_flatten_and_restore(self):
        layer = Flatten()
        x = np.arange(24, dtype=float).reshape(2, 3, 4)
        flat = layer.forward(x, training=True)
        assert flat.shape == (2, 12)
        grad = layer.backward(np.ones_like(flat))
        assert grad.shape == x.shape

    def test_flatten_preserves_order(self):
        x = np.arange(8, dtype=float).reshape(1, 2, 4)
        np.testing.assert_array_equal(Flatten().forward(x)[0], np.arange(8))


class TestConv2D:
    def test_identity_kernel(self):
        layer = Conv2D(1, 1, 3, padding="same", rng=0)
        layer.params["W"][...] = 0.0
        layer.params["W"][0, 0, 1, 1] = 1.0  # delta kernel
        layer.params["b"][...] = 0.0
        x = np.random.default_rng(0).normal(size=(2, 1, 5, 6))
        np.testing.assert_allclose(layer.forward(x), x, atol=1e-12)

    def test_averaging_kernel_on_constant_input(self):
        layer = Conv2D(1, 1, 3, padding="valid", rng=0)
        layer.params["W"][...] = 1.0 / 9.0
        layer.params["b"][...] = 0.0
        x = np.full((1, 1, 5, 5), 4.0)
        out = layer.forward(x)
        assert out.shape == (1, 1, 3, 3)
        np.testing.assert_allclose(out, 4.0)

    def test_same_padding_preserves_shape(self):
        layer = Conv2D(3, 5, 3, padding="same", rng=0)
        out = layer.forward(np.zeros((2, 3, 8, 10)))
        assert out.shape == (2, 5, 8, 10)

    def test_valid_padding_shrinks(self):
        layer = Conv2D(1, 2, (3, 5), padding="valid", rng=0)
        out = layer.forward(np.zeros((1, 1, 8, 10)))
        assert out.shape == (1, 2, 6, 6)

    def test_bias_added_per_channel(self):
        layer = Conv2D(1, 2, 1, padding="valid", rng=0)
        layer.params["W"][...] = 0.0
        layer.params["b"][...] = np.array([1.5, -2.0])
        out = layer.forward(np.zeros((1, 1, 3, 3)))
        np.testing.assert_allclose(out[0, 0], 1.5)
        np.testing.assert_allclose(out[0, 1], -2.0)

    def test_cross_correlation_orientation(self):
        """Kernel is applied un-flipped (cross-correlation, like Keras)."""
        layer = Conv2D(1, 1, 3, padding="valid", rng=0)
        layer.params["W"][...] = 0.0
        layer.params["W"][0, 0, 0, 0] = 1.0  # top-left tap
        layer.params["b"][...] = 0.0
        x = np.zeros((1, 1, 3, 3))
        x[0, 0, 0, 0] = 7.0
        out = layer.forward(x)
        assert out[0, 0, 0, 0] == 7.0

    def test_channel_mixing(self):
        layer = Conv2D(2, 1, 1, padding="valid", rng=0)
        layer.params["W"][...] = np.array([[[[2.0]], [[3.0]]]])
        layer.params["b"][...] = 0.0
        x = np.ones((1, 2, 2, 2))
        np.testing.assert_allclose(layer.forward(x), 5.0)

    def test_wrong_channel_count_rejected(self):
        with pytest.raises(ValueError):
            Conv2D(2, 1, 3, rng=0).forward(np.zeros((1, 3, 8, 8)))

    def test_even_kernel_same_padding_rejected(self):
        with pytest.raises(ValueError):
            Conv2D(1, 1, 2, padding="same", rng=0)

    def test_input_smaller_than_kernel_rejected(self):
        layer = Conv2D(1, 1, 5, padding="valid", rng=0)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((1, 1, 3, 3)))


class TestMaxPool2D:
    def test_known_pooling(self):
        x = np.array([[[[1.0, 2.0, 5.0, 1.0],
                        [3.0, 4.0, 0.0, 0.0],
                        [7.0, 0.0, 1.0, 1.0],
                        [0.0, 0.0, 1.0, 9.0]]]])
        out = MaxPool2D(2).forward(x)
        np.testing.assert_allclose(out, [[[[4.0, 5.0], [7.0, 9.0]]]])

    def test_backward_routes_to_argmax(self):
        layer = MaxPool2D(2)
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        layer.forward(x, training=True)
        grad = layer.backward(np.array([[[[10.0]]]]))
        expected = np.zeros_like(x)
        expected[0, 0, 1, 1] = 10.0
        np.testing.assert_array_equal(grad, expected)

    def test_tie_breaks_to_first_occurrence(self):
        layer = MaxPool2D(2)
        x = np.full((1, 1, 2, 2), 5.0)
        layer.forward(x, training=True)
        grad = layer.backward(np.array([[[[8.0]]]]))
        assert grad[0, 0, 0, 0] == 8.0
        assert grad.sum() == 8.0  # gradient mass preserved, not duplicated

    def test_indivisible_shape_rejected(self):
        with pytest.raises(ValueError):
            MaxPool2D(2).forward(np.zeros((1, 1, 5, 4)))

    def test_non_4d_rejected(self):
        with pytest.raises(ValueError):
            MaxPool2D(2).forward(np.zeros((2, 4, 4)))

    def test_rectangular_pool(self):
        out = MaxPool2D((1, 2)).forward(np.zeros((1, 1, 3, 4)))
        assert out.shape == (1, 1, 3, 2)


class TestInferenceMode:
    """Evaluation-mode forwards: no backward caches, batch-invariant."""

    def _cached_attrs(self, layer):
        return {
            name: getattr(layer, name)
            for name in ("_x", "_mask", "_y", "_shape", "_x_padded", "_x_shape", "_argmax")
            if hasattr(layer, name)
        }

    @pytest.mark.parametrize(
        "layer,shape",
        [
            (Dense(6, 4, rng=0), (3, 6)),
            (ReLU(), (3, 5)),
            (Tanh(), (3, 5)),
            (Sigmoid(), (3, 5)),
            (Flatten(), (2, 3, 4)),
            (Conv2D(1, 2, 3, padding="same", rng=1), (2, 1, 6, 6)),
            (MaxPool2D(2), (2, 1, 4, 4)),
        ],
        ids=["dense", "relu", "tanh", "sigmoid", "flatten", "conv", "pool"],
    )
    def test_eval_forward_caches_nothing_and_backward_raises(self, layer, shape):
        x = np.random.default_rng(0).normal(size=shape)
        layer.forward(x, training=False)
        for name, value in self._cached_attrs(layer).items():
            assert value is None, f"{type(layer).__name__}.{name} cached in eval mode"
        with pytest.raises(RuntimeError, match="backward called before forward"):
            layer.backward(np.ones_like(layer.forward(x, training=False)))

    @pytest.mark.parametrize(
        "layer,shape",
        [
            (Dense(6, 4, rng=0), (3, 6)),
            (Conv2D(1, 2, 3, padding="same", rng=1), (2, 1, 6, 6)),
            (MaxPool2D(2), (2, 1, 4, 4)),
        ],
        ids=["dense", "conv", "pool"],
    )
    def test_eval_forward_matches_training_forward(self, layer, shape):
        x = np.random.default_rng(1).normal(size=shape)
        np.testing.assert_allclose(
            layer.forward(x, training=False), layer.forward(x, training=True), rtol=1e-12
        )

    def test_eval_forward_clears_stale_training_cache(self):
        layer = Dense(3, 2, rng=0)
        layer.forward(np.ones((2, 3)), training=True)
        layer.forward(np.ones((2, 3)), training=False)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((2, 2)))

    @pytest.mark.parametrize("rows", [1, 2, 7, 16, 33])
    def test_dense_eval_rows_bitwise_invariant_to_batch_size(self, rows):
        """Row i of any batch equals the same row evaluated alone —
        the fixed-width blocked GEMM contract the DL ensemble relies on."""
        layer = Dense(37, 11, rng=2)
        x = np.random.default_rng(3).normal(size=(rows, 37))
        full = layer.forward(x, training=False)
        for i in range(rows):
            np.testing.assert_array_equal(
                full[i], layer.forward(x[i : i + 1], training=False)[0]
            )

    def test_conv_eval_rows_bitwise_invariant_to_batch_size(self):
        layer = Conv2D(2, 3, 3, padding="same", rng=4)
        x = np.random.default_rng(5).normal(size=(6, 2, 8, 8))
        full = layer.forward(x, training=False)
        for i in range(6):
            np.testing.assert_array_equal(
                full[i], layer.forward(x[i : i + 1], training=False)[0]
            )
