"""Regression losses and their gradients."""

import numpy as np
import pytest

from repro.nn.gradcheck import numerical_gradient
from repro.nn.losses import HuberLoss, MAELoss, MSELoss


class TestMSE:
    def test_value(self):
        loss = MSELoss()
        assert loss.forward(np.array([1.0, 3.0]), np.array([0.0, 1.0])) == pytest.approx(2.5)

    def test_zero_at_perfect_prediction(self):
        loss = MSELoss()
        x = np.random.default_rng(0).normal(size=(3, 4))
        assert loss.forward(x, x) == 0.0

    def test_gradient_matches_finite_differences(self):
        loss = MSELoss()
        rng = np.random.default_rng(1)
        pred = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 3))
        loss.forward(pred, target)
        analytic = loss.backward()
        numeric = numerical_gradient(lambda p: loss.forward(p, target), pred.copy())
        np.testing.assert_allclose(analytic, numeric, atol=1e-7)

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            MSELoss().backward()


class TestMAE:
    def test_value_is_paper_eq6(self):
        loss = MAELoss()
        pred = np.array([[0.1, 0.3], [0.0, -0.2]])
        target = np.array([[0.0, 0.0], [0.0, 0.0]])
        assert loss.forward(pred, target) == pytest.approx(0.15)

    def test_gradient_is_scaled_sign(self):
        loss = MAELoss()
        pred = np.array([1.0, -2.0, 5.0])
        target = np.array([0.0, 0.0, 6.0])
        loss.forward(pred, target)
        np.testing.assert_allclose(loss.backward(), np.array([1.0, -1.0, -1.0]) / 3)


class TestHuber:
    def test_quadratic_region_matches_half_mse(self):
        loss = HuberLoss(delta=10.0)
        pred = np.array([0.5, -0.3])
        target = np.zeros(2)
        assert loss.forward(pred, target) == pytest.approx(0.5 * np.mean(pred**2))

    def test_linear_region(self):
        loss = HuberLoss(delta=1.0)
        value = loss.forward(np.array([5.0]), np.array([0.0]))
        assert value == pytest.approx(1.0 * (5.0 - 0.5))

    def test_gradient_clipped(self):
        loss = HuberLoss(delta=1.0)
        loss.forward(np.array([5.0, 0.2]), np.zeros(2))
        np.testing.assert_allclose(loss.backward(), [0.5, 0.1])

    def test_gradient_matches_finite_differences(self):
        loss = HuberLoss(delta=0.7)
        rng = np.random.default_rng(2)
        pred = rng.normal(size=6)
        target = rng.normal(size=6)
        loss.forward(pred, target)
        numeric = numerical_gradient(lambda p: loss.forward(p, target), pred.copy())
        loss.forward(pred, target)
        np.testing.assert_allclose(loss.backward(), numeric, atol=1e-6)

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            HuberLoss(delta=0.0)


class TestValidation:
    @pytest.mark.parametrize("loss", [MSELoss(), MAELoss(), HuberLoss()])
    def test_shape_mismatch_rejected(self, loss):
        with pytest.raises(ValueError):
            loss.forward(np.zeros(3), np.zeros(4))

    @pytest.mark.parametrize("loss", [MSELoss(), MAELoss(), HuberLoss()])
    def test_empty_rejected(self, loss):
        with pytest.raises(ValueError):
            loss.forward(np.zeros(0), np.zeros(0))

    def test_callable_interface(self):
        assert MSELoss()(np.ones(2), np.zeros(2)) == pytest.approx(1.0)
