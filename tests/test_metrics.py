"""Table I metrics."""

import numpy as np
import pytest

from repro.nn.metrics import (
    max_absolute_error,
    mean_absolute_error,
    mean_squared_error,
    per_sample_mae,
)


class TestMAE:
    def test_value(self):
        pred = np.array([[1.0, 2.0], [3.0, 4.0]])
        target = np.array([[1.5, 2.0], [2.0, 4.0]])
        assert mean_absolute_error(pred, target) == pytest.approx(0.375)

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=(2, 8))
        assert mean_absolute_error(a, b) == mean_absolute_error(b, a)

    def test_zero_for_identical(self):
        a = np.random.default_rng(1).normal(size=(4, 4))
        assert mean_absolute_error(a, a) == 0.0


class TestMaxError:
    def test_value(self):
        pred = np.array([[0.0, 0.1], [5.0, 0.0]])
        target = np.zeros((2, 2))
        assert max_absolute_error(pred, target) == 5.0

    def test_max_at_least_mean(self):
        rng = np.random.default_rng(2)
        a, b = rng.normal(size=(2, 30))
        assert max_absolute_error(a, b) >= mean_absolute_error(a, b)


class TestMSE:
    def test_value(self):
        assert mean_squared_error(np.array([2.0]), np.array([0.0])) == 4.0


class TestPerSample:
    def test_per_sample_shape_and_mean(self):
        pred = np.array([[1.0, 1.0], [0.0, 0.0]])
        target = np.zeros((2, 2))
        per = per_sample_mae(pred, target)
        np.testing.assert_allclose(per, [1.0, 0.0])
        assert per.mean() == pytest.approx(mean_absolute_error(pred, target))

    def test_3d_samples(self):
        pred = np.ones((3, 2, 2))
        target = np.zeros((3, 2, 2))
        np.testing.assert_allclose(per_sample_mae(pred, target), 1.0)


class TestValidation:
    @pytest.mark.parametrize(
        "fn", [mean_absolute_error, max_absolute_error, mean_squared_error, per_sample_mae]
    )
    def test_shape_mismatch(self, fn):
        with pytest.raises(ValueError):
            fn(np.zeros(3), np.zeros(4))

    @pytest.mark.parametrize(
        "fn", [mean_absolute_error, max_absolute_error, mean_squared_error]
    )
    def test_empty(self, fn):
        with pytest.raises(ValueError):
            fn(np.zeros(0), np.zeros(0))
