"""Leapfrog and Boris pushers."""

import numpy as np
import pytest

from repro.pic.mover import (
    boris_push_velocities,
    push_positions,
    push_velocities,
    rewind_velocities,
)


class TestLeapfrog:
    def test_velocity_update_eq2(self):
        v = np.array([1.0, -2.0])
        e = np.array([0.5, 0.5])
        out = push_velocities(v, e, qm=-1.0, dt=0.2)
        np.testing.assert_allclose(out, v - 0.1)

    def test_position_update_eq1(self):
        x = np.array([0.1, 0.5])
        v = np.array([1.0, -1.0])
        out = push_positions(x, v, dt=0.2, length=2.0)
        np.testing.assert_allclose(out, [0.3, 0.3])

    def test_position_wraps_periodically(self):
        x = np.array([1.9, 0.05])
        v = np.array([1.0, -1.0])
        out = push_positions(x, v, dt=0.2, length=2.0)
        np.testing.assert_allclose(out, [0.1, 1.85])

    def test_free_streaming_many_steps(self):
        x = np.array([0.0])
        v = np.array([0.3])
        for _ in range(100):
            x = push_positions(x, v, dt=0.1, length=1.0)
        np.testing.assert_allclose(x, [3.0 % 1.0], atol=1e-12)

    def test_rewind_then_push_recovers_initial_velocity(self):
        v = np.array([0.7, -0.4])
        e = np.array([0.2, -0.1])
        half_back = rewind_velocities(v, e, qm=-1.0, dt=0.2)
        forward = push_velocities(half_back, e, qm=-1.0, dt=0.2)
        # rewind is half a step, push is a full step: net +half step.
        np.testing.assert_allclose(forward, v + 0.5 * (-1.0) * e * 0.2)

    def test_time_reversibility(self):
        """Leapfrog drift-kick with E=0 is exactly reversible."""
        rng = np.random.default_rng(0)
        x0 = rng.uniform(0, 1, 50)
        v0 = rng.normal(size=50)
        x = push_positions(x0, v0, dt=0.1, length=1.0)
        x_back = push_positions(x, -v0, dt=0.1, length=1.0)
        np.testing.assert_allclose(x_back, x0, atol=1e-12)

    def test_zero_field_keeps_velocity(self):
        v = np.array([0.5])
        assert push_velocities(v, np.zeros(1), qm=-1.0, dt=0.2)[0] == 0.5


class TestHarmonicOscillator:
    def test_leapfrog_energy_bounded_on_sho(self):
        """Kick-drift on E = -x (unit frequency): energy oscillates but
        stays bounded over thousands of periods (symplecticity)."""
        dt = 0.1
        x, v = 1.0, 0.0
        v -= 0.5 * dt * (-x)  # rewind to t - dt/2 with acceleration a = -x
        energies = []
        for _ in range(5000):
            v += dt * (-x)
            x += v * dt
            v_sync = v + 0.5 * dt * (-x)
            energies.append(0.5 * v_sync**2 + 0.5 * x**2)
        energies = np.asarray(energies)
        assert np.max(np.abs(energies - 0.5)) < 0.02


class TestBoris:
    def test_boris_reduces_to_leapfrog_without_b(self):
        rng = np.random.default_rng(1)
        v = rng.normal(size=20)
        e = rng.normal(size=20)
        np.testing.assert_allclose(
            boris_push_velocities(v, e, qm=-1.0, dt=0.2, b=0.0),
            push_velocities(v, e, qm=-1.0, dt=0.2),
            atol=1e-14,
        )

    def test_boris_with_field_and_rotation_differs(self):
        v = np.array([1.0])
        e = np.array([0.0])
        out = boris_push_velocities(v, e, qm=1.0, dt=0.5, b=1.0)
        # Pure rotation reduces v_x magnitude (some velocity rotated into v_y).
        assert abs(out[0]) < 1.0

    def test_boris_rotation_angle_small_b(self):
        """For small angles the 1D-projected rotation matches cos(theta)."""
        v = np.array([1.0])
        dt, b = 0.01, 1.0
        out = boris_push_velocities(v, np.zeros(1), qm=1.0, dt=dt, b=b)
        assert out[0] == pytest.approx(np.cos(dt), abs=1e-6)
