"""The served ``mpi`` engine family: simulated-MPI solvers as engines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.engines.base import (
    MPI_DEFAULT_N_RANKS,
    available_engines,
    make_engine,
    mpi_rank_params,
    validate_engine_config,
)
from repro.parallel.picparallel import MPIEnsemble, run_distributed_traditional
from repro.pic.simulation import TraditionalPIC
from repro.service import SimulationService, result_key


@pytest.fixture
def config() -> SimulationConfig:
    return SimulationConfig(
        n_cells=32, particles_per_cell=50, n_steps=10, vth=0.01, seed=0,
        solver="mpi",
    )


class TestRegistration:
    def test_mpi_is_a_registered_family(self):
        assert "mpi" in available_engines()

    def test_rank_count_comes_from_config_extra(self, config):
        assert mpi_rank_params(config) == MPI_DEFAULT_N_RANKS
        assert mpi_rank_params(config.with_updates(extra={"n_ranks": 2})) == 2

    @pytest.mark.parametrize("bad", [0, -1, "three", 2.5])
    def test_malformed_rank_counts_rejected(self, config, bad):
        with pytest.raises(ValueError, match="n_ranks"):
            validate_engine_config(config.with_updates(extra={"n_ranks": bad}))

    def test_float32_rejected(self, config):
        with pytest.raises(ValueError, match="float64"):
            validate_engine_config(config.with_updates(dtype="float32"))


class TestLockstepParity:
    @pytest.mark.parametrize("n_ranks", [1, 2, 4])
    def test_rows_bitwise_match_run_distributed_traditional(self, config, n_ranks):
        cfg = config.with_updates(extra={"n_ranks": n_ranks})
        ensemble = make_engine([cfg, cfg.with_updates(seed=5)])
        assert isinstance(ensemble, MPIEnsemble)
        history = ensemble.run(cfg.n_steps)
        batched = history.as_arrays()
        for row, member_cfg in enumerate([cfg, cfg.with_updates(seed=5)]):
            solo = run_distributed_traditional(
                member_cfg, n_ranks=n_ranks, n_steps=member_cfg.n_steps
            ).history.as_arrays()
            for name, values in solo.items():
                # Solo single-run histories are squeezed to (T,); the
                # ensemble records a (T, batch) column per member.
                got = batched[name] if name == "time" else batched[name][:, row]
                assert np.array_equal(got, values), (name, row)

    def test_physics_matches_traditional_engine(self, config):
        """Decomposition only reorders float sums: same physics."""
        serial = TraditionalPIC(config.with_updates(solver="traditional")).run(
            config.n_steps
        ).as_arrays()
        dist = make_engine([config]).run(config.n_steps).as_arrays()
        np.testing.assert_allclose(dist["total"][:, 0], serial["total"], rtol=1e-10)
        np.testing.assert_allclose(
            dist["mode1"][:, 0], serial["mode1"], rtol=1e-8, atol=1e-14
        )
        np.testing.assert_allclose(
            dist["momentum"][:, 0], serial["momentum"], atol=1e-12
        )

    def test_comm_stats_exposed_per_member(self, config):
        ensemble = make_engine([config, config.with_updates(seed=5)])
        ensemble.run(3)
        stats = ensemble.comm_stats
        assert len(stats) == 2
        assert all(s.total_bytes > 0 for s in stats)


class TestServedMPI:
    def test_service_runs_mpi_requests(self, config):
        with SimulationService(start=False) as service:
            future = service.submit(config, phase_space=True)
            service.flush()
            result = future.result()
        solo = make_engine([config])
        arrays = solo.run(config.n_steps).as_arrays()
        for name in result.series:
            want = arrays[name] if name == "time" else arrays[name][:, 0]
            assert np.array_equal(result.series[name], want), name
        assert np.array_equal(result.efield, solo.efield[0])
        assert np.array_equal(result.final_x, solo.particles.x[0])
        assert np.array_equal(result.final_v, solo.v_at_integer_time[0])

    def test_different_rank_counts_address_different_results(self, config):
        two = config.with_updates(extra={"n_ranks": 2})
        four = config.with_updates(extra={"n_ranks": 4})
        assert result_key(two, solver="mpi") != result_key(four, solver="mpi")

    def test_mixed_rank_counts_share_a_batch(self, config):
        """Each member carries its own decomposition, so rank counts mix."""
        two = config.with_updates(extra={"n_ranks": 2})
        four = config.with_updates(extra={"n_ranks": 4}, seed=5)
        with SimulationService(start=False) as service:
            futures = [service.submit(two), service.submit(four)]
            service.flush()
            results = [f.result() for f in futures]
            assert service.stats["batches"] == 1
        for result, cfg in zip(results, (two, four)):
            solo = run_distributed_traditional(
                cfg, n_ranks=mpi_rank_params(cfg), n_steps=cfg.n_steps
            ).history.as_arrays()
            for name in result.series:
                assert np.array_equal(result.series[name], solo[name]), name
