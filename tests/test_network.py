"""Sequential container: wiring, prediction, persistence."""

import numpy as np
import pytest

from repro.nn.layers import Dense, Flatten, ReLU
from repro.nn.network import Sequential


@pytest.fixture
def model() -> Sequential:
    return Sequential([Dense(4, 8, rng=0), ReLU(), Dense(8, 2, rng=1)])


class TestForwardBackward:
    def test_forward_chains_layers(self, model):
        x = np.random.default_rng(0).normal(size=(3, 4))
        manual = x
        for layer in model.layers:
            manual = layer.forward(manual)
        np.testing.assert_allclose(model.forward(x), manual)

    def test_callable(self, model):
        x = np.zeros((1, 4))
        np.testing.assert_allclose(model(x), model.forward(x))

    def test_backward_returns_input_gradient_shape(self, model):
        x = np.random.default_rng(1).normal(size=(5, 4))
        y = model.forward(x, training=True)
        grad = model.backward(np.ones_like(y))
        assert grad.shape == x.shape

    def test_add_chains(self):
        model = Sequential().add(Dense(2, 3, rng=0)).add(ReLU())
        assert len(model.layers) == 2

    def test_non_layer_rejected(self):
        with pytest.raises(TypeError):
            Sequential([Dense(2, 2, rng=0), "relu"])  # type: ignore[list-item]


class TestPredict:
    def test_batched_predict_equals_full_forward(self, model):
        x = np.random.default_rng(2).normal(size=(25, 4))
        np.testing.assert_allclose(model.predict(x, batch_size=4), model.forward(x))

    def test_predict_single_sample(self, model):
        assert model.predict(np.zeros((1, 4))).shape == (1, 2)

    def test_invalid_batch_size(self, model):
        with pytest.raises(ValueError):
            model.predict(np.zeros((2, 4)), batch_size=0)

    def test_preallocated_chunking_matches_one_shot(self, model):
        """Multi-chunk predictions (preallocated output) equal the
        single-forward result when chunks align with the GEMM blocks."""
        x = np.random.default_rng(4).normal(size=(40, 4))
        np.testing.assert_array_equal(model.predict(x, batch_size=16), model.predict(x))

    def test_predict_rows_invariant_to_batch_size(self, model):
        x = np.random.default_rng(5).normal(size=(9, 4))
        full = model.predict(x)
        for i in range(9):
            np.testing.assert_array_equal(full[i], model.predict(x[i : i + 1])[0])


class TestParameters:
    def test_n_parameters(self, model):
        assert model.n_parameters == (4 * 8 + 8) + (8 * 2 + 2)

    def test_param_grad_pairs_order_stable(self, model):
        pairs1 = model.param_grad_pairs()
        pairs2 = model.param_grad_pairs()
        for (p1, _), (p2, _) in zip(pairs1, pairs2):
            assert p1 is p2

    def test_zero_grad_clears_all(self, model):
        x = np.ones((2, 4))
        model.forward(x, training=True)
        model.backward(np.ones((2, 2)))
        model.zero_grad()
        for _, g in model.param_grad_pairs():
            assert np.all(g == 0)

    def test_summary_mentions_layers_and_params(self, model):
        text = model.summary()
        assert "Dense" in text
        assert f"{model.n_parameters:,}" in text


class TestPersistence:
    def test_save_load_roundtrip(self, model, tmp_path):
        x = np.random.default_rng(3).normal(size=(4, 4))
        expected = model.forward(x)
        path = model.save(tmp_path / "model.npz")
        clone = Sequential([Dense(4, 8, rng=9), ReLU(), Dense(8, 2, rng=9)])
        clone.load(path)
        np.testing.assert_allclose(clone.forward(x), expected)

    def test_state_dict_keys(self, model):
        keys = set(model.state_dict())
        assert keys == {"0.W", "0.b", "2.W", "2.b"}

    def test_load_state_dict_shape_mismatch(self, model):
        state = model.state_dict()
        state = {k: v.copy() for k, v in state.items()}
        state["0.W"] = np.zeros((2, 2))
        with pytest.raises(ValueError, match="shape mismatch"):
            model.load_state_dict(state)

    def test_load_state_dict_missing_key(self, model):
        state = {k: v for k, v in model.state_dict().items() if k != "0.b"}
        with pytest.raises(ValueError, match="missing"):
            model.load_state_dict(state)

    def test_load_state_dict_unexpected_key(self, model):
        state = dict(model.state_dict())
        state["9.W"] = np.zeros(2)
        with pytest.raises(ValueError, match="unexpected"):
            model.load_state_dict(state)

    def test_load_into_wrong_architecture_fails(self, model, tmp_path):
        path = model.save(tmp_path / "model.npz")
        other = Sequential([Dense(4, 8, rng=0), ReLU(), Flatten(), Dense(8, 2, rng=0)])
        with pytest.raises(ValueError):
            other.load(path)

    def test_from_saved_rebuilds_architecture_and_weights(self, model, tmp_path):
        x = np.random.default_rng(6).normal(size=(3, 4))
        expected = model.forward(x)
        path = model.save(tmp_path / "model.npz")
        clone = Sequential.from_saved(path)
        assert [repr(a) for a in clone.layers] == [repr(a) for a in model.layers]
        np.testing.assert_array_equal(clone.forward(x), expected)

    def test_from_saved_rejects_unreconstructable_layer(self, tmp_path):
        from repro.nn.layers import Dropout

        model = Sequential([Dense(4, 4, rng=0), Dropout(0.5, rng=0), Dense(4, 2, rng=1)])
        path = model.save(tmp_path / "model.npz")
        with pytest.raises(ValueError, match="fingerprint"):
            Sequential.from_saved(path)

    def test_from_saved_never_executes_fingerprint_code(self, model, tmp_path):
        """A checkpoint is data: hostile fingerprints must be rejected,
        not evaluated."""
        import json as _json

        path = model.save(tmp_path / "model.npz")
        with np.load(path, allow_pickle=False) as archive:
            arrays = {k: archive[k] for k in archive.files}
        canary = tmp_path / "pwned"
        for payload in [
            f"__import__('pathlib').Path({str(canary)!r}).touch()",
            "().__class__.__base__.__subclasses__()",
            "Dense(4, 8).forward",
            "[Dense(4, 8) for _ in range(1)][0]",
        ]:
            arrays["__architecture__"] = np.frombuffer(
                _json.dumps([payload, "ReLU()", "Dense(8, 2)"]).encode(), dtype=np.uint8
            )
            np.savez_compressed(path, **arrays)
            with pytest.raises(ValueError, match="fingerprint"):
                Sequential.from_saved(path)
            assert not canary.exists()
