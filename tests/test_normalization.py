"""Min-max normalization (Eq. 5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phasespace.normalization import MinMaxNormalizer


class TestFitTransform:
    def test_eq5_formula(self):
        data = np.array([2.0, 4.0, 6.0])
        norm = MinMaxNormalizer().fit(data)
        np.testing.assert_allclose(norm.transform(data), [0.0, 0.5, 1.0])

    def test_fit_transform_range(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(10, 4)) * 7 + 3
        out = MinMaxNormalizer().fit_transform(data)
        assert out.min() == pytest.approx(0.0)
        assert out.max() == pytest.approx(1.0)

    def test_global_scalar_statistics_not_per_feature(self):
        """The paper uses the dataset-wide min/max, not per-pixel."""
        data = np.array([[0.0, 10.0], [5.0, 5.0]])
        norm = MinMaxNormalizer().fit(data)
        np.testing.assert_allclose(norm.transform(data), [[0.0, 1.0], [0.5, 0.5]])

    def test_transform_new_data_can_exceed_unit_interval(self):
        norm = MinMaxNormalizer().fit(np.array([0.0, 1.0]))
        assert norm.transform(np.array([2.0]))[0] == pytest.approx(2.0)

    def test_clip_option(self):
        norm = MinMaxNormalizer().fit(np.array([0.0, 1.0]))
        out = norm.transform(np.array([-1.0, 2.0]), clip=True)
        np.testing.assert_allclose(out, [0.0, 1.0])

    def test_inverse_transform_roundtrip(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=50) * 11 - 4
        norm = MinMaxNormalizer().fit(data)
        np.testing.assert_allclose(norm.inverse_transform(norm.transform(data)), data, atol=1e-12)


class TestErrors:
    def test_transform_before_fit(self):
        with pytest.raises(RuntimeError):
            MinMaxNormalizer().transform(np.zeros(3))

    def test_inverse_before_fit(self):
        with pytest.raises(RuntimeError):
            MinMaxNormalizer().inverse_transform(np.zeros(3))

    def test_fit_empty(self):
        with pytest.raises(ValueError):
            MinMaxNormalizer().fit(np.array([]))

    def test_fit_constant_data(self):
        with pytest.raises(ValueError, match="degenerate"):
            MinMaxNormalizer().fit(np.full(5, 3.0))

    def test_to_dict_before_fit(self):
        with pytest.raises(RuntimeError):
            MinMaxNormalizer().to_dict()


class TestPersistence:
    def test_dict_roundtrip(self):
        norm = MinMaxNormalizer().fit(np.array([-2.0, 8.0]))
        clone = MinMaxNormalizer.from_dict(norm.to_dict())
        data = np.linspace(-5, 15, 9)
        np.testing.assert_allclose(clone.transform(data), norm.transform(data))

    def test_from_dict_marks_fitted(self):
        clone = MinMaxNormalizer.from_dict({"minimum": 0.0, "maximum": 2.0})
        assert clone.fitted


class TestNormalizerProperties:
    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=2,
            max_size=50,
        ).filter(lambda v: max(v) - min(v) > 1e-9)
    )
    @settings(max_examples=60, deadline=None)
    def test_transform_maps_extremes_to_unit_interval(self, values):
        data = np.asarray(values)
        norm = MinMaxNormalizer().fit(data)
        out = norm.transform(data)
        assert out.min() == pytest.approx(0.0, abs=1e-9)
        assert out.max() == pytest.approx(1.0, abs=1e-9)

    @given(
        values=st.lists(
            st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
            min_size=2,
            max_size=30,
        ).filter(lambda v: max(v) - min(v) > 1e-6)
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, values):
        data = np.asarray(values)
        norm = MinMaxNormalizer().fit(data)
        np.testing.assert_allclose(
            norm.inverse_transform(norm.transform(data)), data, atol=1e-7
        )
