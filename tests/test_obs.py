"""Tracing + telemetry: spans, traces, adoption, rendering, envelopes."""

import json
import re

import numpy as np
import pytest

from repro.api import Client, RunRequest, RunResult
from repro.config import SimulationConfig
from repro.engines.observables import StepTimer
from repro.obs import (
    NOOP_TRACE,
    NOOP_TRACER,
    DurationHistogram,
    Span,
    Trace,
    TraceBuffer,
    Tracer,
    render_prometheus,
    render_waterfall,
    span_tree,
    spans_from_wire,
)
from repro.obs.trace import MAX_ATTRIBUTES_PER_SPAN, MAX_SPANS_PER_TRACE, NOOP_SPAN


def small_config(**kwargs):
    base = dict(n_cells=16, particles_per_cell=10, n_steps=4, vth=0.02)
    base.update(kwargs)
    return SimulationConfig(**base)


class TestSpan:
    def test_finish_records_duration_and_lands_in_trace(self):
        trace = Trace()
        span = trace.start_span("work")
        assert span.duration_s is None
        span.finish()
        assert span.duration_s >= 0.0
        assert trace.span_dicts()[0]["name"] == "work"

    def test_finish_is_idempotent(self):
        trace = Trace()
        span = trace.start_span("once")
        span.finish()
        end = span.end
        span.finish()
        assert span.end == end
        assert len(trace.span_dicts()) == 1

    def test_context_manager_records_exceptions(self):
        trace = Trace()
        with pytest.raises(RuntimeError):
            with trace.span("boom") as span:
                raise RuntimeError("kaput")
        assert span.end is not None
        assert span.attributes["error"] == "RuntimeError: kaput"

    def test_attributes_are_bounded_and_coerced(self):
        span = Span("attrs")
        for i in range(MAX_ATTRIBUTES_PER_SPAN + 5):
            span.set_attribute(f"k{i}", i)
        assert len(span.attributes) == MAX_ATTRIBUTES_PER_SPAN
        # Existing keys stay writable past the cap; non-scalars stringify.
        span.set_attribute("k0", [1, 2])
        assert span.attributes["k0"] == "[1, 2]"

    def test_to_dict_is_relative_to_base(self):
        span = Span("rel", start=10.0)
        span.finish(end=10.5)
        out = span.to_dict(base=9.0)
        assert out["start_s"] == pytest.approx(1.0)
        assert out["duration_s"] == pytest.approx(0.5)


class TestTrace:
    def test_span_cap_counts_dropped(self):
        trace = Trace()
        for i in range(MAX_SPANS_PER_TRACE + 7):
            trace.start_span(f"s{i}").finish()
        assert len(trace.span_dicts()) == MAX_SPANS_PER_TRACE
        assert trace.dropped == 7

    def test_span_dicts_rebased_and_sorted(self):
        trace = Trace()
        late = trace.start_span("late")
        early = trace.start_span("early")
        early.start = late.start - 1.0
        early.finish()
        late.finish()
        spans = trace.span_dicts()
        assert [s["name"] for s in spans] == ["early", "late"]
        assert spans[0]["start_s"] == 0.0
        assert all(s["start_s"] >= 0.0 for s in spans)

    def test_finish_publishes_once(self):
        buffer = TraceBuffer()
        trace = Tracer(buffer=buffer).start_trace("request")
        trace.start_span("a").finish()
        trace.finish()
        trace.finish()
        assert buffer.stats()["completed"] == 1
        assert buffer.get(trace.trace_id) is trace

    def test_payload_shape(self):
        trace = Trace(name="req")
        with trace.span("outer") as outer:
            trace.start_span("inner", parent_id=outer.span_id).finish()
        payload = trace.finish().to_payload()
        assert payload["trace_id"] == trace.trace_id
        assert payload["n_spans"] == 2
        assert payload["complete"] is True
        assert payload["duration_s"] >= 0.0
        (root,) = payload["spans"]
        assert root["name"] == "outer"
        assert [c["name"] for c in root["children"]] == ["inner"]

    def test_adopt_reanchors_and_reparents(self):
        trace = Trace()
        host = trace.start_span("host")
        host.finish()
        trace.adopt(
            [
                {"span_id": "w1", "parent_id": None, "name": "worker",
                 "start_s": 0.25, "duration_s": 0.5},
            ],
            anchor=host.start + 0.1,
            parent_id=host.span_id,
        )
        spans = {s["name"]: s for s in trace.span_dicts()}
        assert spans["worker"]["parent_id"] == host.span_id
        assert spans["worker"]["start_s"] == pytest.approx(0.35, abs=1e-6)

    def test_adopt_remote_aligns_on_the_parent_link(self):
        # The shipped client.http span (1.0 s) encloses the local server
        # span (0.4 s); the 0.6 s RTT slack splits evenly around it.
        trace = Trace()
        server = Span("server.request", trace=trace, parent_id="http1")
        server.finish(end=server.start + 0.4)
        trace.adopt_remote([
            {"span_id": "root1", "parent_id": None, "name": "client.request",
             "start_s": 0.0, "duration_s": 1.1},
            {"span_id": "http1", "parent_id": "root1", "name": "client.http",
             "start_s": 0.1, "duration_s": 1.0},
        ])
        spans = {s["name"]: s for s in trace.span_dicts()}
        assert spans["client.request"]["start_s"] == 0.0
        assert spans["server.request"]["start_s"] == pytest.approx(0.4, abs=1e-6)
        tree = span_tree(trace.span_dicts())
        assert tree[0]["name"] == "client.request"
        assert tree[0]["children"][0]["name"] == "client.http"
        assert tree[0]["children"][0]["children"][0]["name"] == "server.request"

    def test_adopt_remote_without_link_right_aligns(self):
        trace = Trace()
        local = trace.start_span("local")
        local.finish(end=local.start + 0.2)
        trace.adopt_remote([
            {"span_id": "r1", "parent_id": None, "name": "remote",
             "start_s": 0.0, "duration_s": 0.5},
        ])
        spans = {s["name"]: s for s in trace.span_dicts()}
        remote_end = spans["remote"]["start_s"] + spans["remote"]["duration_s"]
        local_end = spans["local"]["start_s"] + spans["local"]["duration_s"]
        assert remote_end == pytest.approx(local_end, abs=1e-6)


class TestSpanTree:
    def test_orphans_become_roots(self):
        roots = span_tree([
            {"span_id": "a", "parent_id": None, "name": "a",
             "start_s": 0.0, "duration_s": 1.0},
            {"span_id": "b", "parent_id": "a", "name": "b",
             "start_s": 0.5, "duration_s": 0.1},
            {"span_id": "c", "parent_id": "gone", "name": "c",
             "start_s": 0.2, "duration_s": 0.1},
        ])
        assert [r["name"] for r in roots] == ["a", "c"]
        assert [c["name"] for c in roots[0]["children"]] == ["b"]

    def test_children_sorted_by_start(self):
        roots = span_tree([
            {"span_id": "a", "parent_id": None, "name": "a",
             "start_s": 0.0, "duration_s": 1.0},
            {"span_id": "late", "parent_id": "a", "name": "late",
             "start_s": 0.8, "duration_s": 0.1},
            {"span_id": "soon", "parent_id": "a", "name": "soon",
             "start_s": 0.1, "duration_s": 0.1},
        ])
        assert [c["name"] for c in roots[0]["children"]] == ["soon", "late"]


class TestSpansFromWire:
    def test_valid_spans_pass_and_clamp(self):
        (span,) = spans_from_wire([
            {"span_id": "s", "parent_id": None, "name": "n",
             "start_s": 1, "duration_s": -0.5, "attributes": {"k": object()}},
        ])
        assert span["duration_s"] == 0.0
        assert isinstance(span["attributes"]["k"], str)

    @pytest.mark.parametrize("raw, message", [
        ("nope", "not an object"),
        ({"span_id": "s"}, "missing a name"),
        ({"name": "n"}, "missing a span_id"),
        ({"name": "n", "span_id": "s", "parent_id": 7}, "non-string parent_id"),
        ({"name": "n", "span_id": "s", "start_s": "x"}, "non-numeric timings"),
        ({"name": "n", "span_id": "s", "attributes": [1]}, "attributes must be"),
    ])
    def test_malformed_spans_rejected(self, raw, message):
        with pytest.raises(ValueError, match=message):
            spans_from_wire([raw])


class TestTraceBuffer:
    def test_ring_evicts_oldest(self):
        buffer = TraceBuffer(capacity=2)
        traces = [Trace(name=f"t{i}") for i in range(3)]
        for trace in traces:
            buffer.add(trace)
        assert buffer.ids() == [traces[1].trace_id, traces[2].trace_id]
        assert buffer.get(traces[0].trace_id) is None
        assert buffer.last() is traces[2]
        assert buffer.stats() == {
            "capacity": 2, "buffered": 2, "completed": 3, "evicted": 1,
        }

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            TraceBuffer(capacity=0)


class TestNoop:
    def test_noop_objects_are_falsy_and_inert(self):
        assert not NOOP_TRACER.enabled
        assert NOOP_TRACER.buffer is None
        trace = NOOP_TRACER.start_trace("anything")
        assert trace is NOOP_TRACE
        assert not trace
        span = trace.start_span("x", parent_id="y")
        assert span is NOOP_SPAN
        assert not span
        assert span.set_attribute("k", "v") is span
        assert span.finish() is span
        with trace.span("ctx"):
            pass
        trace.adopt([], anchor=0.0)
        trace.adopt_remote([])
        assert trace.finish() is trace
        assert trace.span_dicts() == []
        assert trace.to_payload()["n_spans"] == 0
        assert NOOP_TRACER.get("anything") is None


class TestDurationHistogram:
    def test_buckets_are_cumulative(self):
        hist = DurationHistogram(buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            hist.observe(value)
        snap = hist.snapshot()
        assert snap["count"] == 4
        assert snap["max_s"] == 5.0
        assert snap["sum_s"] == pytest.approx(5.555)
        assert snap["buckets"] == {"0.01": 1, "0.1": 2, "1": 3, "inf": 4}

    def test_ignores_negative_and_nan(self):
        hist = DurationHistogram()
        hist.observe(-1.0)
        hist.observe(float("nan"))
        assert hist.snapshot()["count"] == 0


_EXPOSITION_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9.+a-z-]+$"
)


class TestPrometheusRendering:
    def test_every_line_is_valid_exposition(self):
        snapshot = {
            "requests": {"total": 3, "by_endpoint": {"/v1/run": 3},
                         "by_status": {"ok": 2, "error": 1}},
            "parse_failures": {"total": 1, "by_endpoint": {"/v1/batch": 1}},
            "http_responses": {"200": 2, "400": 1},
            "connections": {"open": 0, "total": 2, "rejected": 0, "limit": 4},
            "queue": {"inflight": 0, "max_pending": 8, "service_pending": 0},
            "cache_hit_ratio": 0.5,
            "batch_size_histogram": {"1": 1, "2": 1},
            "latency": {"count": 2, "p50_s": 0.01, "p90_s": 0.02,
                        "p99_s": 0.03, "max_s": 0.04},
            "stages": {"exec": DurationHistogram().snapshot()},
            "service": {"requests": 3, "draining": False},
            "pool": {"kind": "inline", "runs_executed": 3},
            "traces": {"capacity": 256, "buffered": 1},
        }
        text = render_prometheus(snapshot)
        assert text.endswith("\n")
        for line in text.strip().splitlines():
            if line.startswith("#"):
                assert re.match(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*", line)
            else:
                assert _EXPOSITION_LINE.match(line), line
        assert "repro_requests_total 3" in text
        assert 'repro_requests_by_status_total{status="ok"} 2' in text
        assert "repro_parse_failures_total 1" in text
        assert 'repro_request_latency_seconds{quantile="0.5"} 0.01' in text
        assert 'repro_stage_duration_seconds_bucket{stage="exec",le="+Inf"} 0' in text
        assert "repro_cache_hit_ratio 0.5" in text
        # Non-numeric leaves (strings, bools) never render as samples.
        assert "inline" not in text
        assert "False" not in text

    def test_label_values_are_escaped(self):
        text = render_prometheus(
            {"requests": {"total": 1, "by_endpoint": {'a"b\\c\n': 1}}}
        )
        assert 'endpoint="a\\"b\\\\c\\n"' in text


class TestWaterfall:
    def test_renders_nested_rows(self):
        trace = Trace(name="req")
        with trace.span("outer") as outer:
            child = trace.start_span("inner", parent_id=outer.span_id)
            child.set_attribute("hit", True).finish()
        text = render_waterfall(trace.to_payload())
        lines = text.splitlines()
        assert lines[0].startswith(f"trace {trace.trace_id}")
        assert "2 spans" in lines[0]
        assert any(line.startswith("outer") for line in lines)
        assert any(line.lstrip().startswith("inner") and "(hit=True)" in line
                   for line in lines)
        assert all("[" in line and "]" in line for line in lines[2:])

    def test_empty_payload(self):
        text = render_waterfall(Trace().to_payload())
        assert "(no spans recorded)" in text

    def test_dropped_spans_noted(self):
        payload = Trace().to_payload()
        payload["dropped_spans"] = 3
        assert "(3 spans dropped)" in render_waterfall(payload)


class TestStepTimer:
    def test_measures_elapsed_per_call(self):
        timer = StepTimer()
        assert timer.names == ("step_s",)
        first = timer.measure(None)
        second = timer.measure(None)
        assert first.shape == (1,)
        assert float(first[0]) >= 0.0
        assert float(second[0]) >= 0.0


@pytest.fixture(scope="module")
def result_payload():
    """A real OK result envelope to mutate in timings-validation tests."""
    with Client(background=False) as client:
        result = client.run(RunRequest(config=small_config(seed=9), id="v"))
    return result.to_dict()


class TestTimingsValidation:
    def _with_timings(self, payload, timings):
        obj = json.loads(json.dumps(payload))
        obj["timings"] = timings
        return obj

    def test_valid_timings_round_trip(self, result_payload):
        result = RunResult.from_dict(self._with_timings(
            result_payload, {"wall_s": 0.5, "exec_s": 0.25, "trace_id": "abc"}
        ))
        assert result.timings == {"wall_s": 0.5, "exec_s": 0.25, "trace_id": "abc"}

    @pytest.mark.parametrize("value", [float("nan"), float("inf"), -float("inf")])
    def test_non_finite_values_rejected_naming_the_key(self, result_payload, value):
        with pytest.raises(ValueError, match="exec_s"):
            RunResult.from_dict(
                self._with_timings(result_payload, {"exec_s": value})
            )

    def test_unknown_keys_rejected(self, result_payload):
        with pytest.raises(ValueError, match="made_up"):
            RunResult.from_dict(
                self._with_timings(result_payload, {"made_up": 1.0})
            )

    def test_non_numeric_and_bool_rejected(self, result_payload):
        with pytest.raises(ValueError, match="wall_s"):
            RunResult.from_dict(
                self._with_timings(result_payload, {"wall_s": "fast"})
            )
        with pytest.raises(ValueError, match="wall_s"):
            RunResult.from_dict(
                self._with_timings(result_payload, {"wall_s": True})
            )

    def test_trace_id_must_be_a_string(self, result_payload):
        with pytest.raises(ValueError, match="trace_id"):
            RunResult.from_dict(
                self._with_timings(result_payload, {"trace_id": 7})
            )


class TestInProcessTracing:
    def test_traced_run_reports_stages_and_a_span_tree(self):
        with Client(background=False, tracing=True) as client:
            result = client.run(RunRequest(config=small_config(seed=3), id="t1"))
            assert {"wall_s", "batch_wait_s", "queue_wait_s", "exec_s",
                    "store_s", "trace_id"} <= set(result.timings)
            trace = client.service.tracer.get(result.timings["trace_id"])
            assert trace is not None
            payload = trace.to_payload()
        names = set()
        def collect(nodes):
            for node in nodes:
                names.add(node["name"])
                collect(node["children"])
        collect(payload["spans"])
        assert {"client.request", "service.submit", "service.store_lookup",
                "executor.dispatch", "executor.worker_run", "engine.build",
                "engine.run", "engine.steps", "service.store_put"} <= names
        assert payload["complete"] is True
        json.dumps(payload)  # the payload must be pure JSON

    def test_cached_repeat_gets_its_own_trace(self):
        with Client(background=False, tracing=True) as client:
            first = client.run(RunRequest(config=small_config(seed=4), id="c1"))
            second = client.run(RunRequest(config=small_config(seed=4), id="c2"))
            assert second.cache_hit
            assert second.timings["trace_id"] != first.timings["trace_id"]
            assert "store_s" in second.timings
            assert "exec_s" not in second.timings
            trace = client.service.tracer.get(second.timings["trace_id"])
            spans = {s["name"] for s in trace.span_dicts()}
        assert "service.store_lookup" in spans
        assert "executor.dispatch" not in spans

    def test_tracing_does_not_change_results(self):
        request = RunRequest(config=small_config(seed=5), id="p", phase_space=True)
        with Client(background=False, tracing=False) as off:
            plain = off.run(request)
        with Client(background=False, tracing=True) as on:
            traced = on.run(request)
        assert traced.key == plain.key
        assert set(traced.series) == set(plain.series)
        for name, values in plain.series.items():
            a, b = np.asarray(traced.series[name]), np.asarray(values)
            assert a.dtype == b.dtype
            np.testing.assert_array_equal(a, b, err_msg=f"drift in {name!r}")
        for name in ("final_x", "final_v"):
            np.testing.assert_array_equal(
                np.asarray(getattr(traced, name)),
                np.asarray(getattr(plain, name)),
                err_msg=f"drift in {name!r}",
            )

    def test_untraced_client_has_no_trace_id(self):
        with Client(background=False) as client:
            result = client.run(RunRequest(config=small_config(seed=6), id="u1"))
            assert "trace_id" not in result.timings
            assert not client.service.tracer.enabled

    def test_submit_rejection_finishes_its_trace(self):
        # solver="dl" without a loaded model is rejected at submit time;
        # the trace must still complete (with the error on its root span).
        with Client(background=False, tracing=True, raise_on_error=False) as client:
            result = client.run(
                RunRequest(config=small_config(solver="dl"), id="f1")
            )
            assert result.status == "error"
            trace = client.service.tracer.buffer.last()
            assert trace is not None
            payload = trace.to_payload()
        assert payload["complete"] is True
        errors = [
            s.get("attributes", {}).get("error")
            for s in trace.span_dicts()
        ]
        assert any(errors)
