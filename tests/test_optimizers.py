"""Optimizer update rules and convergence behavior."""

import numpy as np
import pytest

from repro.nn.optimizers import SGD, Adam, RMSProp


def _pair(value, grad):
    return [(np.array(value, dtype=float), np.array(grad, dtype=float))]


class TestSGD:
    def test_plain_update(self):
        pairs = _pair([1.0, 2.0], [0.5, -0.5])
        SGD(lr=0.1).step(pairs)
        np.testing.assert_allclose(pairs[0][0], [0.95, 2.05])

    def test_momentum_accumulates(self):
        opt = SGD(lr=0.1, momentum=0.9)
        p = np.array([0.0])
        g = np.array([1.0])
        opt.step([(p, g)])
        assert p[0] == pytest.approx(-0.1)
        opt.step([(p, g)])
        # v = -0.1*0.9 - 0.1 = -0.19
        assert p[0] == pytest.approx(-0.29)

    def test_updates_in_place(self):
        p = np.array([1.0])
        SGD(lr=1.0).step([(p, np.array([1.0]))])
        assert p[0] == 0.0

    def test_invalid_lr(self):
        with pytest.raises(ValueError):
            SGD(lr=0.0)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            SGD(lr=0.1, momentum=1.0)

    def test_parameter_list_change_detected(self):
        opt = SGD(lr=0.1, momentum=0.5)
        opt.step(_pair([1.0], [1.0]))
        with pytest.raises(ValueError):
            opt.step(_pair([1.0], [1.0]) + _pair([2.0], [1.0]))


class TestAdam:
    def test_first_step_has_magnitude_lr(self):
        """With bias correction, |step 1| ~= lr regardless of grad scale."""
        for scale in (1e-4, 1.0, 1e4):
            p = np.array([0.0])
            Adam(lr=0.01).step([(p, np.array([scale]))])
            assert p[0] == pytest.approx(-0.01, rel=1e-3)

    def test_step_direction_opposes_gradient(self):
        p = np.array([0.0, 0.0])
        Adam(lr=0.1).step([(p, np.array([1.0, -1.0]))])
        assert p[0] < 0 < p[1]

    def test_matches_reference_implementation(self):
        """Two steps compared against the canonical Kingma-Ba equations."""
        lr, b1, b2, eps = 0.1, 0.9, 0.999, 1e-8
        grads = [np.array([0.3]), np.array([-0.2])]
        p = np.array([1.0])
        opt = Adam(lr=lr, beta1=b1, beta2=b2, eps=eps)

        p_ref, m, v = 1.0, 0.0, 0.0
        for t, g in enumerate(grads, start=1):
            m = b1 * m + (1 - b1) * g[0]
            v = b2 * v + (1 - b2) * g[0] ** 2
            m_hat = m / (1 - b1**t)
            v_hat = v / (1 - b2**t)
            p_ref -= lr * m_hat / (np.sqrt(v_hat) + eps)
            opt.step([(p, g.copy())])
        assert p[0] == pytest.approx(p_ref, rel=1e-12)

    def test_converges_on_quadratic(self):
        p = np.array([5.0, -3.0])
        opt = Adam(lr=0.1)
        for _ in range(500):
            opt.step([(p, 2 * p)])  # grad of |p|^2
        np.testing.assert_allclose(p, 0.0, atol=1e-3)

    def test_invalid_betas(self):
        with pytest.raises(ValueError):
            Adam(beta1=1.0)
        with pytest.raises(ValueError):
            Adam(beta2=-0.1)

    def test_invalid_eps(self):
        with pytest.raises(ValueError):
            Adam(eps=0.0)

    def test_state_mismatch_detected(self):
        opt = Adam()
        opt.step(_pair([1.0], [1.0]))
        with pytest.raises(ValueError):
            opt.step(_pair([1.0], [1.0]) + _pair([2.0], [1.0]))


class TestRMSProp:
    def test_first_step(self):
        p = np.array([0.0])
        RMSProp(lr=0.1, rho=0.9).step([(p, np.array([2.0]))])
        # cache = 0.1*4 = 0.4; step = -0.1*2/sqrt(0.4)
        assert p[0] == pytest.approx(-0.1 * 2.0 / (np.sqrt(0.4) + 1e-8))

    def test_converges_on_quadratic(self):
        p = np.array([4.0])
        opt = RMSProp(lr=0.05)
        for _ in range(800):
            opt.step([(p, 2 * p)])
        # RMSProp with fixed lr settles into a small limit cycle around
        # the minimum rather than converging exactly.
        assert abs(p[0]) < 0.05

    def test_invalid_rho(self):
        with pytest.raises(ValueError):
            RMSProp(rho=1.5)


class TestOptimizerOnModel:
    @pytest.mark.parametrize("opt", [SGD(lr=0.05, momentum=0.9), Adam(lr=0.01), RMSProp(lr=0.005)])
    def test_reduces_loss_on_regression_task(self, opt):
        from repro.nn.layers import Dense, ReLU
        from repro.nn.losses import MSELoss
        from repro.nn.network import Sequential
        from repro.nn.training import Trainer

        rng = np.random.default_rng(0)
        x = rng.normal(size=(128, 3))
        y = x @ rng.normal(size=(3, 2))
        model = Sequential([Dense(3, 16, rng=1), ReLU(), Dense(16, 2, rng=2)])
        trainer = Trainer(model, MSELoss(), opt)
        history = trainer.fit(x, y, epochs=30, batch_size=32, rng=3)
        assert history.loss[-1] < 0.2 * history.loss[0]
