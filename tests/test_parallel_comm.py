"""Simulated communicator: collective semantics and byte accounting."""

import numpy as np
import pytest

from repro.parallel.comm import CommStats, SimulatedComm


class TestCollectives:
    def test_allreduce_sums(self):
        comm = SimulatedComm(3)
        out = comm.allreduce([np.ones(4), 2 * np.ones(4), 3 * np.ones(4)])
        assert len(out) == 3
        for buf in out:
            np.testing.assert_allclose(buf, 6.0)

    def test_allreduce_buffers_independent(self):
        comm = SimulatedComm(2)
        out = comm.allreduce([np.ones(2), np.ones(2)])
        out[0][0] = 99.0
        assert out[1][0] == 2.0

    def test_allgather_concatenates(self):
        comm = SimulatedComm(2)
        out = comm.allgather([np.array([1.0, 2.0]), np.array([3.0])])
        np.testing.assert_array_equal(out[0], [1.0, 2.0, 3.0])
        np.testing.assert_array_equal(out[1], [1.0, 2.0, 3.0])

    def test_reduce_to_root(self):
        comm = SimulatedComm(2)
        total = comm.reduce([np.ones(3), 4 * np.ones(3)])
        np.testing.assert_allclose(total, 5.0)

    def test_gather(self):
        comm = SimulatedComm(2)
        out = comm.gather([np.array([1.0]), np.array([2.0])], root=0)
        assert len(out) == 2
        np.testing.assert_array_equal(out[1], [2.0])

    def test_bcast_replicates(self):
        comm = SimulatedComm(3)
        out = comm.bcast(np.array([7.0, 8.0]))
        assert len(out) == 3
        for buf in out:
            np.testing.assert_array_equal(buf, [7.0, 8.0])

    def test_sendrecv_copies(self):
        comm = SimulatedComm(2)
        msg = np.array([1.0])
        out = comm.sendrecv(msg)
        out[0] = 5.0
        assert msg[0] == 1.0

    def test_wrong_buffer_count_rejected(self):
        with pytest.raises(ValueError):
            SimulatedComm(3).allreduce([np.ones(2)])

    def test_bad_root_rejected(self):
        with pytest.raises(ValueError):
            SimulatedComm(2).bcast(np.ones(1), root=5)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            SimulatedComm(0)


class TestByteAccounting:
    def test_allreduce_bytes(self):
        comm = SimulatedComm(4)
        comm.allreduce([np.zeros(10) for _ in range(4)])
        assert comm.stats.bytes_by_op["allreduce"] == 10 * 8 * 4

    def test_reduce_counts_non_root_only(self):
        comm = SimulatedComm(4)
        comm.reduce([np.zeros(10) for _ in range(4)], root=0)
        assert comm.stats.bytes_by_op["reduce"] == 10 * 8 * 3

    def test_bcast_counts_non_root_only(self):
        comm = SimulatedComm(4)
        comm.bcast(np.zeros(16))
        assert comm.stats.bytes_by_op["bcast"] == 16 * 8 * 3

    def test_allgather_bytes(self):
        comm = SimulatedComm(3)
        comm.allgather([np.zeros(5) for _ in range(3)])
        assert comm.stats.bytes_by_op["allgather"] == 15 * 8 * 2

    def test_single_rank_is_free(self):
        comm = SimulatedComm(1)
        comm.allreduce([np.zeros(100)])
        comm.bcast(np.zeros(100))
        comm.sendrecv(np.zeros(100))
        assert comm.stats.total_bytes == 0

    def test_call_counting_and_totals(self):
        comm = SimulatedComm(2)
        comm.allreduce([np.zeros(2), np.zeros(2)])
        comm.allreduce([np.zeros(2), np.zeros(2)])
        comm.bcast(np.zeros(2))
        assert comm.stats.calls_by_op["allreduce"] == 2
        assert comm.stats.total_calls == 3
        assert comm.stats.total_bytes == 2 * (2 * 8 * 2) + 2 * 8

    def test_reset(self):
        comm = SimulatedComm(2)
        comm.bcast(np.zeros(4))
        comm.stats.reset()
        assert comm.stats.total_bytes == 0
        assert comm.stats.total_calls == 0

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            CommStats().charge("x", -1)
