"""Distributed PIC: serial equivalence and communication accounting."""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.parallel.picparallel import (
    communication_model,
    run_distributed_dl,
    run_distributed_traditional,
)
from repro.phasespace.binning import PhaseSpaceGrid
from repro.pic.simulation import TraditionalPIC


@pytest.fixture
def config() -> SimulationConfig:
    return SimulationConfig(n_cells=32, particles_per_cell=50, n_steps=10, vth=0.01, seed=0)


class TestSerialEquivalence:
    @pytest.mark.parametrize("n_ranks", [1, 2, 4])
    def test_traditional_matches_serial_physics(self, config, n_ranks):
        """Decomposition only reorders float sums: same trajectories."""
        serial = TraditionalPIC(config).run(10).as_arrays()
        dist = run_distributed_traditional(config, n_ranks=n_ranks, n_steps=10)
        da = dist.history.as_arrays()
        np.testing.assert_allclose(da["total"], serial["total"], rtol=1e-10)
        np.testing.assert_allclose(da["mode1"], serial["mode1"], rtol=1e-8, atol=1e-14)
        np.testing.assert_allclose(da["momentum"], serial["momentum"], atol=1e-12)

    def test_dl_matches_serial_dl(self, config, tiny_trained_solver, tiny_solver_config):
        """NGP histogram counts are integers: partial sums are exact."""
        from repro.dlpic.simulation import DLPIC

        cfg = tiny_solver_config.with_updates(n_steps=8)
        serial = DLPIC(cfg, tiny_trained_solver).run(8).as_arrays()
        dist = run_distributed_dl(cfg, tiny_trained_solver, n_ranks=4, n_steps=8)
        da = dist.history.as_arrays()
        np.testing.assert_allclose(da["total"], serial["total"], rtol=1e-12)
        np.testing.assert_allclose(da["mode1"], serial["mode1"], rtol=1e-10, atol=1e-15)


class TestCommunicationAccounting:
    def test_traditional_comm_ops(self, config):
        dist = run_distributed_traditional(config, n_ranks=4, n_steps=5)
        assert "reduce" in dist.comm.bytes_by_op
        assert "bcast" in dist.comm.bytes_by_op
        # reduce(rho) + bcast(E) per step, nothing else except migration.
        assert dist.comm.calls_by_op["reduce"] == 5
        assert dist.comm.calls_by_op["bcast"] == 5

    def test_dl_single_sync_point(self, tiny_solver_config, tiny_trained_solver):
        dist = run_distributed_dl(
            tiny_solver_config, tiny_trained_solver, n_ranks=4, n_steps=5
        )
        assert dist.comm.calls_by_op["allreduce"] == 5
        assert "reduce" not in dist.comm.bytes_by_op
        assert "bcast" not in dist.comm.bytes_by_op

    def test_single_rank_runs_communication_free(self, config):
        dist = run_distributed_traditional(config, n_ranks=1, n_steps=5)
        assert dist.comm.total_bytes == 0

    def test_migration_traffic_counted(self, config):
        dist = run_distributed_traditional(config, n_ranks=4, n_steps=10)
        # Streaming beams cross slab boundaries constantly.
        assert dist.comm.bytes_by_op.get("sendrecv", 0) > 0

    def test_bytes_per_step_property(self, config):
        dist = run_distributed_traditional(config, n_ranks=2, n_steps=4)
        assert dist.bytes_per_step == pytest.approx(dist.comm.total_bytes / 4)
        assert dist.sync_points_per_step >= 2.0


class TestCommunicationModel:
    def test_traditional_volume_formula(self):
        grid = PhaseSpaceGrid(n_x=64, n_v=64)
        model = communication_model(n_ranks=8, n_cells=64, ps_grid=grid)
        # reduce: 64*8 bytes * 7 ranks; bcast the same.
        assert model["traditional"]["bytes_per_step"] == 2 * 64 * 8 * 7
        assert model["traditional"]["sync_points_per_step"] == 2.0

    def test_dl_volume_formula(self):
        grid = PhaseSpaceGrid(n_x=64, n_v=64)
        model = communication_model(n_ranks=8, n_cells=64, ps_grid=grid)
        assert model["dl"]["bytes_per_step"] == 64 * 64 * 8 * 8
        assert model["dl"]["sync_points_per_step"] == 1.0

    def test_dl_has_fewer_sync_points_always(self):
        grid = PhaseSpaceGrid(n_x=64, n_v=64)
        for ranks in (2, 4, 16, 128):
            model = communication_model(ranks, 64, grid)
            assert (
                model["dl"]["sync_points_per_step"]
                < model["traditional"]["sync_points_per_step"]
            )

    def test_single_rank_free(self):
        model = communication_model(1, 64, PhaseSpaceGrid())
        assert model["traditional"]["bytes_per_step"] == 0
        assert model["dl"]["bytes_per_step"] == 0

    def test_migration_added_to_both(self):
        grid = PhaseSpaceGrid(n_x=16, n_v=16)
        with_mig = communication_model(
            4, 64, grid, migrating_fraction=0.1, n_particles=1000
        )
        without = communication_model(4, 64, grid)
        extra = 0.1 * 1000 * 16
        assert with_mig["traditional"]["bytes_per_step"] == pytest.approx(
            without["traditional"]["bytes_per_step"] + extra
        )
        assert with_mig["dl"]["bytes_per_step"] == pytest.approx(
            without["dl"]["bytes_per_step"] + extra
        )

    def test_model_matches_simulated_traditional_run(self, config):
        """Closed-form collective volume equals the simulated run's
        (excluding migration, which depends on the trajectories)."""
        dist = run_distributed_traditional(config, n_ranks=4, n_steps=10)
        grid = PhaseSpaceGrid(n_x=config.n_cells, n_v=8)
        model = communication_model(4, config.n_cells, grid)
        collective = (
            dist.comm.bytes_by_op["reduce"] + dist.comm.bytes_by_op["bcast"]
        ) / 10
        assert collective == pytest.approx(model["traditional"]["bytes_per_step"])

    def test_validation(self):
        with pytest.raises(ValueError):
            communication_model(0, 64, PhaseSpaceGrid())
        with pytest.raises(ValueError):
            communication_model(2, 64, PhaseSpaceGrid(), migrating_fraction=1.5)
