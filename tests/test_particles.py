"""Two-stream particle loading."""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.pic.particles import ParticleSet, load_two_stream


class TestParticleSet:
    def test_length(self):
        ps = ParticleSet(np.zeros(5), np.zeros(5), charge=-0.1, mass=0.1)
        assert len(ps) == 5

    def test_qm(self):
        ps = ParticleSet(np.zeros(2), np.zeros(2), charge=-0.2, mass=0.2)
        assert ps.qm == pytest.approx(-1.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ParticleSet(np.zeros(3), np.zeros(4), charge=-1.0, mass=1.0)

    def test_2d_arrays_accepted_as_batch(self):
        p = ParticleSet(np.zeros((3, 5)), np.zeros((3, 5)), charge=-1.0, mass=1.0)
        assert p.batch == 3
        assert len(p) == 5

    def test_1d_set_has_batch_one(self):
        p = ParticleSet(np.zeros(4), np.zeros(4), charge=-1.0, mass=1.0)
        assert p.batch == 1

    def test_3d_arrays_rejected(self):
        with pytest.raises(ValueError):
            ParticleSet(np.zeros((2, 2, 2)), np.zeros((2, 2, 2)), charge=-1.0, mass=1.0)

    def test_nonpositive_mass_rejected(self):
        with pytest.raises(ValueError):
            ParticleSet(np.zeros(2), np.zeros(2), charge=-1.0, mass=0.0)

    def test_copy_is_deep(self):
        ps = ParticleSet(np.zeros(3), np.ones(3), charge=-1.0, mass=1.0)
        clone = ps.copy()
        clone.x[0] = 9.0
        assert ps.x[0] == 0.0

    def test_kinetic_energy_and_momentum(self):
        ps = ParticleSet(np.zeros(2), np.array([1.0, -3.0]), charge=-1.0, mass=2.0)
        assert ps.kinetic_energy() == pytest.approx(0.5 * 2.0 * 10.0)
        assert ps.momentum() == pytest.approx(2.0 * (-2.0))


class TestRandomLoading:
    def test_particle_count(self):
        cfg = SimulationConfig(n_cells=8, particles_per_cell=10, seed=0)
        assert len(load_two_stream(cfg)) == 80

    def test_positions_inside_box(self):
        cfg = SimulationConfig(n_cells=8, particles_per_cell=50, seed=1)
        ps = load_two_stream(cfg)
        assert np.all(ps.x >= 0.0)
        assert np.all(ps.x < cfg.box_length)

    def test_two_symmetric_beams(self):
        cfg = SimulationConfig(n_cells=8, particles_per_cell=500, v0=0.2, vth=0.0, seed=2)
        ps = load_two_stream(cfg)
        assert np.sum(ps.v > 0) == len(ps) // 2
        np.testing.assert_allclose(np.sort(np.unique(ps.v)), [-0.2, 0.2])

    def test_thermal_spread_statistics(self):
        cfg = SimulationConfig(n_cells=64, particles_per_cell=500, v0=0.2, vth=0.05, seed=3)
        ps = load_two_stream(cfg)
        beam = ps.v[ps.v > 0]
        assert beam.mean() == pytest.approx(0.2, abs=3 * 0.05 / np.sqrt(beam.size))
        assert beam.std() == pytest.approx(0.05, rel=0.05)

    def test_seed_reproducibility(self):
        cfg = SimulationConfig(n_cells=8, particles_per_cell=20, seed=42)
        a = load_two_stream(cfg)
        b = load_two_stream(cfg)
        np.testing.assert_array_equal(a.x, b.x)
        np.testing.assert_array_equal(a.v, b.v)

    def test_different_seeds_differ(self):
        cfg = SimulationConfig(n_cells=8, particles_per_cell=20)
        a = load_two_stream(cfg.with_updates(seed=1))
        b = load_two_stream(cfg.with_updates(seed=2))
        assert not np.array_equal(a.x, b.x)

    def test_explicit_rng_overrides_seed(self):
        cfg = SimulationConfig(n_cells=8, particles_per_cell=20, seed=1)
        a = load_two_stream(cfg, rng=np.random.default_rng(99))
        b = load_two_stream(cfg, rng=np.random.default_rng(99))
        c = load_two_stream(cfg)
        np.testing.assert_array_equal(a.x, b.x)
        assert not np.array_equal(a.x, c.x)

    def test_charge_and_mass_from_config(self):
        cfg = SimulationConfig(n_cells=8, particles_per_cell=10, seed=0)
        ps = load_two_stream(cfg)
        assert ps.charge == pytest.approx(cfg.particle_charge)
        assert ps.mass == pytest.approx(cfg.particle_mass)

    def test_odd_particle_count_rejected(self):
        cfg = SimulationConfig(n_cells=3, particles_per_cell=5, seed=0)
        with pytest.raises(ValueError, match="even particle count"):
            load_two_stream(cfg)


class TestQuietLoading:
    def test_quiet_positions_evenly_spaced(self):
        cfg = SimulationConfig(
            n_cells=8, particles_per_cell=10, loading="quiet", vth=0.0, seed=0
        )
        ps = load_two_stream(cfg)
        half = len(ps) // 2
        spacing = np.diff(np.sort(ps.x[:half]))
        np.testing.assert_allclose(spacing, cfg.box_length / half, atol=1e-12)

    def test_quiet_cold_beams_produce_tiny_initial_field_noise(self):
        """Quiet start suppresses the density noise of random loading."""
        from repro.pic.grid import Grid1D
        from repro.pic.interpolation import charge_density

        base = SimulationConfig(n_cells=32, particles_per_cell=100, vth=0.0, seed=5)
        grid = Grid1D(base.n_cells, base.box_length)
        noisy = load_two_stream(base.with_updates(loading="random"))
        quiet = load_two_stream(base.with_updates(loading="quiet"))
        rho_noisy = charge_density(grid, noisy.x, base.particle_charge)
        rho_quiet = charge_density(grid, quiet.x, base.particle_charge)
        assert np.abs(rho_quiet).max() < 0.01 * np.abs(rho_noisy).max()

    def test_perturbation_seeds_requested_mode(self):
        from repro.pic.diagnostics import mode_spectrum
        from repro.pic.grid import Grid1D
        from repro.pic.interpolation import charge_density

        cfg = SimulationConfig(
            n_cells=64, particles_per_cell=100, loading="quiet", vth=0.0,
            perturbation=0.05, perturbation_mode=3, seed=0,
        )
        ps = load_two_stream(cfg)
        grid = Grid1D(cfg.n_cells, cfg.box_length)
        rho = charge_density(grid, ps.x, cfg.particle_charge)
        spectrum = mode_spectrum(rho)
        assert np.argmax(spectrum[1:]) + 1 == 3
        assert spectrum[3] == pytest.approx(0.05, rel=0.05)
