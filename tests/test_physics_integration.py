"""Physics integration tests: the traditional PIC against linear theory.

These run real (small) simulations; they are the ground truth the DL
method is trained from, so their correctness underpins everything.
"""

import numpy as np
import pytest

from repro import constants
from repro.config import SimulationConfig
from repro.pic.simulation import TraditionalPIC
from repro.theory.coldbeam import beam_velocity_spread
from repro.theory.dispersion import growth_rate_cold
from repro.theory.growth import fit_growth_rate


@pytest.fixture(scope="module")
def two_stream_history():
    """One moderately resolved two-stream run shared by several tests."""
    cfg = SimulationConfig(particles_per_cell=200, v0=0.2, vth=0.025, seed=1)
    sim = TraditionalPIC(cfg)
    return cfg, sim.run(150), sim


class TestTwoStreamGrowth:
    def test_growth_rate_matches_linear_theory(self, two_stream_history):
        cfg, hist, _ = two_stream_history
        a = hist.as_arrays()
        fit = fit_growth_rate(a["time"], a["mode1"])
        gamma_theory = growth_rate_cold(2 * np.pi / cfg.box_length, cfg.v0)
        assert fit.relative_error(gamma_theory) < 0.25
        assert fit.r_squared > 0.9

    def test_instability_grows_orders_of_magnitude(self, two_stream_history):
        _, hist, _ = two_stream_history
        a = hist.as_arrays()
        assert a["mode1"].max() > 20 * a["mode1"][0]

    def test_saturation_amplitude_scale(self, two_stream_history):
        """Paper: 'the maximum electric field value ... approximately 0.1'."""
        _, hist, _ = two_stream_history
        a = hist.as_arrays()
        assert 0.03 < a["mode1"].max() < 0.3

    def test_energy_variation_within_paper_two_percent(self, two_stream_history):
        _, hist, _ = two_stream_history
        assert hist.energy_variation() < 0.02

    def test_momentum_conserved(self, two_stream_history):
        _, hist, _ = two_stream_history
        assert abs(hist.momentum_drift()) < 1e-12

    def test_phase_space_hole_forms(self, two_stream_history):
        """After saturation, particles mix: both beams blur together."""
        cfg, _, sim = two_stream_history
        spread_up, spread_down = beam_velocity_spread(sim.particles.v)
        assert spread_up > 2 * cfg.vth
        assert spread_down > 2 * cfg.vth


class TestColdBeamNumericalInstability:
    def test_stable_config_no_physical_growth_but_ripples(self):
        """v0=0.4 beams are linearly stable yet numerically heat up."""
        cfg = SimulationConfig(
            particles_per_cell=200, v0=0.4, vth=0.0, seed=2,
        )
        sim = TraditionalPIC(cfg)
        hist = sim.run(200)
        a = hist.as_arrays()
        # No exponential two-stream growth of E1...
        assert a["mode1"].max() < 0.02
        # ...but the beams acquire non-physical velocity spread (Fig. 6).
        spread_up, spread_down = beam_velocity_spread(sim.particles.v)
        assert max(spread_up, spread_down) > 1e-3

    def test_linear_theory_says_stable(self):
        k1 = 2 * np.pi / constants.TWO_STREAM_BOX_LENGTH
        assert growth_rate_cold(k1, 0.4) == 0.0


class TestPlasmaOscillation:
    def test_langmuir_oscillation_frequency(self):
        """A seeded density perturbation of a cold stationary plasma
        oscillates at the plasma frequency (omega_pe = 1)."""
        cfg = SimulationConfig(
            n_cells=64, particles_per_cell=200, v0=1e-9, vth=0.0,
            loading="quiet", perturbation=0.01, perturbation_mode=1,
            dt=0.05, seed=3,
        )
        sim = TraditionalPIC(cfg)
        hist = sim.run(500)  # 25 time units ~ 4 plasma periods
        a = hist.as_arrays()
        e1 = a["mode1"]
        # Count zero crossings of the oscillating mode-1 field energy proxy:
        # E1 amplitude touches ~0 twice per plasma period.
        signal = e1 - e1.mean()
        crossings = np.count_nonzero(np.diff(np.signbit(signal)))
        period_estimate = 2 * a["time"][-1] / crossings
        omega = 2 * np.pi / (2 * period_estimate)  # |E1| has half the period
        assert omega == pytest.approx(1.0, rel=0.15)


class TestInterpolationOrderAblation:
    def test_higher_order_suppresses_high_k_deposit_noise(self):
        """TSC deposits are smoother than NGP: the upper half of the
        charge-density spectrum carries much less shot noise."""
        from repro.pic.diagnostics import mode_spectrum

        high_k_noise = {}
        for order in ("ngp", "cic", "tsc"):
            cfg = SimulationConfig(
                n_cells=64, particles_per_cell=100, vth=0.0, v0=0.2,
                interpolation=order, seed=4,
            )
            sim = TraditionalPIC(cfg)
            spectrum = mode_spectrum(sim.charge_density)
            high_k_noise[order] = float(spectrum[16:].sum())
        assert high_k_noise["cic"] < high_k_noise["ngp"]
        assert high_k_noise["tsc"] < 0.7 * high_k_noise["ngp"]
        assert high_k_noise["tsc"] < high_k_noise["cic"]
