"""Poisson solvers: analytic solutions, cross-solver agreement, gradients."""

import numpy as np
import pytest

from repro.pic.grid import Grid1D
from repro.pic.poisson import (
    PoissonSolver,
    electric_field_from_potential,
    solve_poisson_direct,
    solve_poisson_fd,
    solve_poisson_spectral,
)

SOLVERS = {
    "spectral": solve_poisson_spectral,
    "fd": solve_poisson_fd,
    "direct": solve_poisson_direct,
}


@pytest.fixture
def grid() -> Grid1D:
    return Grid1D(64, 2.0 * np.pi)


class TestAnalyticSolutions:
    @pytest.mark.parametrize("name", ["spectral"])
    def test_single_mode_exact_spectral(self, grid, name):
        """rho = sin(kx) -> phi = sin(kx)/k^2 exactly for the spectral solver."""
        k = 2.0  # second harmonic of the 2*pi box
        rho = np.sin(k * grid.nodes)
        phi = SOLVERS[name](grid, rho)
        np.testing.assert_allclose(phi, rho / k**2, atol=1e-12)

    @pytest.mark.parametrize("name", ["fd", "direct"])
    def test_single_mode_discrete_eigenvalue(self, grid, name):
        """FD solvers invert the discrete Laplacian eigenvalue instead of k^2."""
        k = 2.0
        rho = np.sin(k * grid.nodes)
        lam = (2.0 - 2.0 * np.cos(k * grid.dx)) / grid.dx**2
        phi = SOLVERS[name](grid, rho)
        np.testing.assert_allclose(phi, rho / lam, atol=1e-10)

    @pytest.mark.parametrize("name", ["fd", "direct"])
    def test_residual_of_discrete_laplacian(self, grid, name):
        """For fd/direct the 3-point Laplacian of phi must equal -rho exactly."""
        rng = np.random.default_rng(0)
        rho = rng.normal(size=grid.n_cells)
        rho -= rho.mean()
        phi = SOLVERS[name](grid, rho)
        lap = (np.roll(phi, -1) - 2 * phi + np.roll(phi, 1)) / grid.dx**2
        np.testing.assert_allclose(lap, -rho, atol=1e-9)

    def test_spectral_residual_small_for_smooth_rho(self, grid):
        """The spectral phi satisfies the 3-point Laplacian to O(dx^2)
        on smooth (low-mode) densities."""
        rho = np.sin(2 * grid.nodes) + 0.5 * np.cos(3 * grid.nodes)
        phi = solve_poisson_spectral(grid, rho)
        lap = (np.roll(phi, -1) - 2 * phi + np.roll(phi, 1)) / grid.dx**2
        assert np.max(np.abs(lap + rho)) < 0.02 * np.max(np.abs(rho))


class TestSolverProperties:
    @pytest.mark.parametrize("name", SOLVERS)
    def test_zero_mean_potential(self, grid, name):
        rng = np.random.default_rng(1)
        rho = rng.normal(size=grid.n_cells)
        phi = SOLVERS[name](grid, rho)
        assert abs(phi.mean()) < 1e-10

    @pytest.mark.parametrize("name", SOLVERS)
    def test_uniform_charge_gives_zero_field(self, grid, name):
        """The k=0 component (neutralized background) produces no field."""
        phi = SOLVERS[name](grid, np.full(grid.n_cells, 0.7))
        np.testing.assert_allclose(phi, 0.0, atol=1e-12)

    @pytest.mark.parametrize("name", SOLVERS)
    def test_linearity(self, grid, name):
        rng = np.random.default_rng(2)
        r1, r2 = rng.normal(size=(2, grid.n_cells))
        combined = SOLVERS[name](grid, r1 + 3.0 * r2)
        separate = SOLVERS[name](grid, r1) + 3.0 * SOLVERS[name](grid, r2)
        np.testing.assert_allclose(combined, separate, atol=1e-9)

    def test_fd_and_direct_agree(self, grid):
        """Two completely different code paths, same discrete operator."""
        rng = np.random.default_rng(3)
        rho = rng.normal(size=grid.n_cells)
        np.testing.assert_allclose(
            solve_poisson_fd(grid, rho), solve_poisson_direct(grid, rho), atol=1e-9
        )

    def test_spectral_and_fd_converge_together(self):
        """On a smooth density the two discretizations converge as dx^2."""
        k = 1.0
        diffs = []
        for n in (32, 64, 128):
            grid = Grid1D(n, 2.0 * np.pi)
            rho = np.sin(k * grid.nodes)
            diffs.append(
                np.max(np.abs(solve_poisson_spectral(grid, rho) - solve_poisson_fd(grid, rho)))
            )
        assert diffs[1] < diffs[0] / 3.5
        assert diffs[2] < diffs[1] / 3.5

    @pytest.mark.parametrize("name", SOLVERS)
    def test_eps0_scaling(self, grid, name):
        rho = np.sin(grid.nodes)
        np.testing.assert_allclose(
            SOLVERS[name](grid, rho, eps0=2.0), 0.5 * SOLVERS[name](grid, rho), atol=1e-12
        )

    def test_shape_validation(self, grid):
        with pytest.raises(ValueError, match="rho has shape"):
            solve_poisson_spectral(grid, np.zeros(5))


class TestElectricField:
    def test_central_difference_of_sine(self, grid):
        phi = np.sin(grid.nodes)
        e = electric_field_from_potential(grid, phi, method="central")
        # E = -dphi/dx = -cos(x), with the discrete sinc factor.
        factor = np.sin(grid.dx) / grid.dx
        np.testing.assert_allclose(e, -np.cos(grid.nodes) * factor, atol=1e-12)

    def test_spectral_gradient_exact_for_modes(self, grid):
        phi = np.sin(2.0 * grid.nodes)
        e = electric_field_from_potential(grid, phi, method="spectral")
        np.testing.assert_allclose(e, -2.0 * np.cos(2.0 * grid.nodes), atol=1e-10)

    def test_constant_potential_no_field(self, grid):
        for method in ("central", "spectral"):
            e = electric_field_from_potential(grid, np.full(grid.n_cells, 4.0), method)
            np.testing.assert_allclose(e, 0.0, atol=1e-12)

    def test_field_has_zero_mean(self, grid):
        rng = np.random.default_rng(4)
        phi = rng.normal(size=grid.n_cells)
        for method in ("central", "spectral"):
            assert abs(electric_field_from_potential(grid, phi, method).mean()) < 1e-12

    def test_unknown_method(self, grid):
        with pytest.raises(ValueError, match="unknown gradient"):
            electric_field_from_potential(grid, np.zeros(grid.n_cells), method="upwind")

    def test_shape_validation(self, grid):
        with pytest.raises(ValueError, match="phi has shape"):
            electric_field_from_potential(grid, np.zeros(3))


class TestFacade:
    def test_solve_returns_phi_and_e(self, grid):
        solver = PoissonSolver(grid)
        rho = np.sin(grid.nodes)
        phi, e = solver.solve(rho)
        assert phi.shape == e.shape == (grid.n_cells,)

    def test_gauss_law_discrete(self, grid):
        """Central-difference divergence of E equals rho/eps0 (spectrally)."""
        solver = PoissonSolver(grid, method="fd", gradient="central")
        rng = np.random.default_rng(5)
        rho = rng.normal(size=grid.n_cells)
        rho -= rho.mean()
        _, e = solver.solve(rho)
        div = (np.roll(e, -1) - np.roll(e, 1)) / (2 * grid.dx)
        # div(central) o grad(central) is the wide 5-point Laplacian; it
        # matches rho after smoothing, so compare in Fourier space on
        # the modes where the wide stencil is invertible.
        rho_k = np.fft.rfft(rho)
        e_k = np.fft.rfft(e)
        k = grid.rfft_wavenumbers()
        keff = np.sin(k * grid.dx) / grid.dx
        lam = (2.0 - 2.0 * np.cos(k * grid.dx)) / grid.dx**2
        mask = (np.abs(keff) > 1e-12) & (np.abs(lam) > 1e-12)
        # E_k = -i keff phi_k and lam phi_k = rho_k -> E_k * (-lam / (i keff)) = rho_k... check ratio
        np.testing.assert_allclose(
            e_k[mask] * lam[mask] / (-1j * keff[mask]), rho_k[mask] / 1.0, atol=1e-8
        )

    def test_invalid_method_rejected(self, grid):
        with pytest.raises(ValueError):
            PoissonSolver(grid, method="amg")
        with pytest.raises(ValueError):
            PoissonSolver(grid, gradient="bad")


class TestCachedSymbols:
    """The facade's per-grid FFT symbol cache (ISSUE 2 satellite):
    precomputed wavenumbers/eigenvalues must change nothing, bitwise."""

    @pytest.mark.parametrize("method", ["spectral", "fd", "direct"])
    @pytest.mark.parametrize("gradient", ["central", "spectral"])
    def test_facade_bitwise_equals_module_functions(self, grid, method, gradient):
        rng = np.random.default_rng(6)
        rho = rng.normal(size=grid.n_cells)
        solver = PoissonSolver(grid, method=method, gradient=gradient)
        phi, e = solver.solve(rho)
        phi_ref = SOLVERS[method](grid, rho)
        np.testing.assert_array_equal(phi, phi_ref)
        np.testing.assert_array_equal(
            e, electric_field_from_potential(grid, phi_ref, gradient)
        )

    @pytest.mark.parametrize("method", ["spectral", "fd"])
    def test_facade_bitwise_equals_module_functions_batched(self, grid, method):
        rng = np.random.default_rng(7)
        rho = rng.normal(size=(4, grid.n_cells))
        solver = PoissonSolver(grid, method=method)
        phi, e = solver.solve(rho)
        np.testing.assert_array_equal(phi, SOLVERS[method](grid, rho))

    def test_symbols_computed_once(self, grid):
        solver = PoissonSolver(grid)
        k_before = solver._k
        solver.solve(np.sin(grid.nodes))
        solver.solve(np.cos(grid.nodes))
        assert solver._k is k_before  # reused, not rebuilt

    def test_eps0_folded_into_cache(self, grid):
        rho = np.sin(grid.nodes)
        phi_scaled, _ = PoissonSolver(grid, eps0=2.0).solve(rho)
        phi_default, _ = PoissonSolver(grid).solve(rho)
        np.testing.assert_allclose(phi_scaled, 0.5 * phi_default, atol=1e-12)
