"""Cross-cutting property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pic.diagnostics import mode_amplitude, mode_spectrum
from repro.pic.grid import Grid1D
from repro.pic.interpolation import deposit, gather
from repro.pic.poisson import solve_poisson_fd, solve_poisson_spectral

finite_floats = st.floats(allow_nan=False, allow_infinity=False, min_value=-1e3, max_value=1e3)


class TestPoissonProperties:
    @given(
        seed=st.integers(0, 2**16),
        n=st.sampled_from([8, 16, 32, 64]),
        solver=st.sampled_from([solve_poisson_spectral, solve_poisson_fd]),
    )
    @settings(max_examples=40, deadline=None)
    def test_potential_always_zero_mean(self, seed, n, solver):
        grid = Grid1D(n, 2.0)
        rho = np.random.default_rng(seed).normal(size=n)
        phi = solver(grid, rho)
        assert abs(phi.mean()) < 1e-9

    @given(seed=st.integers(0, 2**16), shift=st.integers(0, 63))
    @settings(max_examples=30, deadline=None)
    def test_translation_equivariance(self, seed, shift):
        """Rolling rho rolls phi: the solver is translation invariant."""
        grid = Grid1D(64, 2.0)
        rho = np.random.default_rng(seed).normal(size=64)
        phi = solve_poisson_spectral(grid, rho)
        phi_shifted = solve_poisson_spectral(grid, np.roll(rho, shift))
        np.testing.assert_allclose(phi_shifted, np.roll(phi, shift), atol=1e-9)

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=30, deadline=None)
    def test_parity_symmetry(self, seed):
        """Mirroring rho mirrors phi (even operator)."""
        grid = Grid1D(32, 1.0)
        rho = np.random.default_rng(seed).normal(size=32)
        mirrored = rho[::-1].copy()
        phi = solve_poisson_fd(grid, rho)
        phi_m = solve_poisson_fd(grid, mirrored)
        np.testing.assert_allclose(phi_m, phi[::-1], atol=1e-9)


class TestGatherDepositProperties:
    @given(
        seed=st.integers(0, 2**16),
        order=st.sampled_from(["ngp", "cic", "tsc"]),
        n_particles=st.integers(1, 120),
    )
    @settings(max_examples=40, deadline=None)
    def test_adjointness_property(self, seed, order, n_particles):
        grid = Grid1D(16, 3.0)
        rng = np.random.default_rng(seed)
        x = rng.uniform(0, grid.length, n_particles)
        w = rng.normal(size=n_particles)
        field = rng.normal(size=grid.n_cells)
        lhs = np.sum(w * gather(grid, field, x, order=order))
        rhs = grid.dx * np.sum(field * deposit(grid, x, w, order=order))
        np.testing.assert_allclose(lhs, rhs, rtol=1e-9, atol=1e-9)

    @given(seed=st.integers(0, 2**16), order=st.sampled_from(["ngp", "cic", "tsc"]))
    @settings(max_examples=40, deadline=None)
    def test_gather_bounded_by_field_extrema(self, seed, order):
        """Interpolation never overshoots (shape functions are convex)."""
        grid = Grid1D(16, 3.0)
        rng = np.random.default_rng(seed)
        field = rng.normal(size=grid.n_cells)
        x = rng.uniform(0, grid.length, 50)
        values = gather(grid, field, x, order=order)
        assert values.max() <= field.max() + 1e-12
        assert values.min() >= field.min() - 1e-12


class TestSpectrumProperties:
    @given(seed=st.integers(0, 2**16), n=st.sampled_from([16, 32, 64]))
    @settings(max_examples=30, deadline=None)
    def test_reconstruction_from_spectrum_bounds_signal(self, seed, n):
        """max|e| <= sum of mode amplitudes (triangle inequality)."""
        e = np.random.default_rng(seed).normal(size=n)
        spectrum = mode_spectrum(e)
        assert np.abs(e).max() <= spectrum.sum() + 1e-9

    @given(
        amplitude=st.floats(min_value=1e-6, max_value=1e3),
        mode=st.integers(1, 7),
        phase=st.floats(min_value=0, max_value=2 * np.pi),
    )
    @settings(max_examples=40, deadline=None)
    def test_amplitude_recovery_any_phase(self, amplitude, mode, phase):
        n = 32
        x = 2 * np.pi * np.arange(n) / n
        e = amplitude * np.sin(mode * x + phase)
        assert mode_amplitude(e, mode=mode) == pytest.approx(amplitude, rel=1e-9)

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=30, deadline=None)
    def test_parseval_energy_identity(self, seed):
        """sum(e^2)/n equals the spectral energy of the amplitudes."""
        n = 64
        e = np.random.default_rng(seed).normal(size=n)
        spec = mode_spectrum(e)
        spectral_energy = spec[0] ** 2 + 0.5 * np.sum(spec[1:-1] ** 2) + spec[-1] ** 2
        assert np.sum(e**2) / n == pytest.approx(spectral_energy, rel=1e-9)


class TestSimulationProperties:
    @given(seed=st.integers(0, 1000), interp=st.sampled_from(["ngp", "cic", "tsc"]))
    @settings(max_examples=10, deadline=None)
    def test_short_run_invariants(self, seed, interp):
        """Any seeded short run keeps particles in the box, conserves the
        particle count and keeps energy finite."""
        from repro.config import SimulationConfig
        from repro.pic.simulation import TraditionalPIC

        cfg = SimulationConfig(
            n_cells=16, particles_per_cell=20, n_steps=5, vth=0.01,
            interpolation=interp, seed=seed,
        )
        sim = TraditionalPIC(cfg)
        hist = sim.run(5)
        assert len(sim.particles) == cfg.n_particles
        assert np.all((sim.particles.x >= 0) & (sim.particles.x < cfg.box_length))
        assert np.all(np.isfinite(hist.as_arrays()["total"]))

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_momentum_conservation_property(self, seed):
        from repro.config import SimulationConfig
        from repro.pic.simulation import TraditionalPIC

        cfg = SimulationConfig(
            n_cells=16, particles_per_cell=30, n_steps=8, vth=0.02, seed=seed
        )
        hist = TraditionalPIC(cfg).run(8)
        mom = np.asarray(hist["momentum"])
        assert np.max(np.abs(mom - mom[0])) < 1e-12
