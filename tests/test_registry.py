"""Content-addressed model registry + registry: references end to end."""

import json

import numpy as np
import pytest

from repro.api import Client, RunRequest
from repro.config import SimulationConfig
from repro.dlpic import DLFieldSolver
from repro.models.architectures import build_mlp
from repro.obs.metrics import registry_snapshot
from repro.phasespace.binning import PhaseSpaceGrid
from repro.phasespace.normalization import MinMaxNormalizer
from repro.registry import (
    REGISTRY_ENV,
    ModelRegistry,
    is_registry_ref,
    resolve_model_dir,
)


def small_config(**overrides) -> SimulationConfig:
    kwargs = dict(n_cells=32, particles_per_cell=20, n_steps=6, dt=0.2)
    kwargs.update(overrides)
    return SimulationConfig(**kwargs)


def tiny_solver(rng: int = 0) -> DLFieldSolver:
    config = small_config()
    grid = PhaseSpaceGrid(n_x=16, n_v=8, box_length=config.box_length)
    model = build_mlp(
        input_size=grid.size, output_size=config.n_cells, hidden_size=8, rng=rng
    )
    return DLFieldSolver(
        model, grid, MinMaxNormalizer.from_dict({"minimum": 0.0, "maximum": 50.0})
    )


@pytest.fixture
def registry(tmp_path):
    return ModelRegistry(tmp_path / "registry")


class TestRegister:
    def test_register_and_get_by_prefix(self, registry):
        solver = tiny_solver()
        entry = registry.register(solver)
        assert entry.fingerprint == solver.fingerprint()
        assert (entry.path / "model.npz").exists()
        assert (entry.path / "solver.json").exists()
        assert registry.get(entry.fingerprint[:8]).fingerprint == entry.fingerprint
        assert entry.fingerprint[:8] in registry

    def test_register_is_idempotent(self, registry):
        solver = tiny_solver()
        first = registry.register(solver, training={"lr": 1e-3})
        again = registry.register(solver)
        assert again.fingerprint == first.fingerprint
        assert len(registry) == 1
        # The original lineage survives the no-op re-registration.
        assert again.lineage["training"] == {"lr": 1e-3}

    def test_lineage_recorded(self, registry):
        entry = registry.register(
            tiny_solver(),
            campaign_manifest_hash="deadbeef" * 8,
            training={"epochs": 40, "loss": "mse"},
            metrics={"val_mae": 0.01},
        )
        meta = json.loads((entry.path / "meta.json").read_text())
        assert meta["lineage"]["campaign_manifest_hash"] == "deadbeef" * 8
        assert meta["lineage"]["training"]["epochs"] == 40
        assert meta["lineage"]["metrics"]["val_mae"] == 0.01
        assert meta["fingerprint"] == entry.fingerprint

    def test_ambiguous_prefix_rejected(self, registry):
        import shutil

        entry = registry.register(tiny_solver())
        twin = entry.fingerprint[:8] + "f" * (len(entry.fingerprint) - 8)
        if twin == entry.fingerprint:  # pragma: no cover — 2^-224 odds
            twin = entry.fingerprint[:8] + "0" * (len(entry.fingerprint) - 8)
        shutil.copytree(entry.path, registry.models_dir / twin)
        with pytest.raises(ValueError, match="ambiguous"):
            registry.get(entry.fingerprint[:8])
        with pytest.raises(KeyError, match="no model"):
            registry.get("zzzz")
        with pytest.raises(ValueError, match="empty"):
            registry.get("")

    def test_registered_solver_round_trips(self, registry):
        solver = tiny_solver()
        loaded = registry.register(solver).load()
        assert loaded.fingerprint() == solver.fingerprint()

    def test_gauge_tracks_model_count(self, registry):
        registry.register(tiny_solver(rng=0))
        registry.register(tiny_solver(rng=1))
        registry.list()
        assert registry_snapshot() == {"models": 2}


class TestVerifyAndGc:
    def test_intact_model_verifies(self, registry):
        entry = registry.register(tiny_solver())
        assert registry.verify(entry.fingerprint[:8]) is True

    def test_corrupt_weights_fail_verification(self, registry):
        entry = registry.register(tiny_solver())
        weights = entry.path / "model.npz"
        weights.write_bytes(weights.read_bytes()[:-20])
        assert registry.verify(entry.fingerprint) is False

    def test_gc_removes_corrupt_and_keeps_intact(self, registry):
        keep = registry.register(tiny_solver(rng=0))
        drop = registry.register(tiny_solver(rng=1))
        (drop.path / "solver.json").unlink()
        removed = registry.gc()
        assert removed == [drop.fingerprint]
        assert [m.fingerprint for m in registry.list()] == [keep.fingerprint]
        assert registry.verify(keep.fingerprint)

    def test_gc_sweeps_stray_temp_dirs(self, registry):
        registry.models_dir.mkdir(parents=True)
        (registry.models_dir / ".tmp-123-0").mkdir()
        assert registry.gc() == [".tmp-123-0"]


class TestReferences:
    def test_is_registry_ref(self):
        assert is_registry_ref("registry:abc123")
        assert not is_registry_ref("checkpoints/mlp")
        assert not is_registry_ref(None)

    def test_plain_paths_pass_through(self):
        assert resolve_model_dir("checkpoints/mlp") == "checkpoints/mlp"

    def test_explicit_root_form(self, registry):
        entry = registry.register(tiny_solver())
        ref = f"registry:{registry.root}:{entry.fingerprint[:10]}"
        assert resolve_model_dir(ref) == str(entry.path)

    def test_bare_prefix_uses_env_root(self, registry, monkeypatch):
        entry = registry.register(tiny_solver())
        monkeypatch.setenv(REGISTRY_ENV, str(registry.root))
        assert resolve_model_dir(f"registry:{entry.fingerprint[:10]}") == str(
            entry.path
        )

    def test_empty_reference_rejected(self):
        with pytest.raises(ValueError, match="empty registry reference"):
            resolve_model_dir("registry:")

    def test_load_auto_accepts_refs(self, registry):
        solver = tiny_solver()
        entry = registry.register(solver)
        ref = f"registry:{registry.root}:{entry.fingerprint[:10]}"
        assert DLFieldSolver.load_auto(ref).fingerprint() == solver.fingerprint()


class TestEndToEnd:
    """A registered model served through every execution path.

    The acceptance loop: register a checkpoint, reference it as
    ``registry:<root>:<prefix>`` in ``model_dir=``, and assert the
    served :class:`RunResult` carries the model fingerprint in its
    metadata — inline, across the spawned worker pool, and over HTTP.
    """

    def test_inline_client_resolves_ref_and_stamps_fingerprint(self, registry):
        solver = tiny_solver()
        fingerprint = registry.register(solver).fingerprint
        ref = f"registry:{registry.root}:{fingerprint[:10]}"
        config = small_config(solver="dl")
        with Client(background=False, model_dir=ref) as client:
            result = client.run(RunRequest(config=config, id="reg-inline"))
        assert result.ok
        assert result.metadata["model_fingerprint"] == fingerprint
        # The prediction matches the solver loaded directly.
        with Client(background=False, dl_solver=solver) as client:
            direct = client.run(RunRequest(config=config, id="reg-direct"))
        assert np.array_equal(result.series["mode1"], direct.series["mode1"])

    def test_non_dl_results_carry_no_fingerprint(self, registry):
        fingerprint = registry.register(tiny_solver()).fingerprint
        ref = f"registry:{registry.root}:{fingerprint[:10]}"
        with Client(background=False, model_dir=ref) as client:
            result = client.run(
                RunRequest(config=small_config(), id="reg-trad")
            )
        assert result.ok
        assert "model_fingerprint" not in result.metadata

    def test_ref_crosses_spawned_worker_pool(self, registry):
        fingerprint = registry.register(tiny_solver()).fingerprint
        # Explicit-root form: spawned workers resolve it with no env.
        ref = f"registry:{registry.root}:{fingerprint[:10]}"
        config = small_config(solver="dl")
        with Client(background=False, model_dir=ref, workers=2) as client:
            result = client.run(RunRequest(config=config, id="reg-pool"))
        assert result.ok
        assert result.metadata["model_fingerprint"] == fingerprint

    def test_campaign_trained_model_carries_lineage(self, registry, tmp_path):
        """The full loop: stream a campaign, train on it, register with
        the campaign hash, serve through the ref, trace the result back."""
        from repro.datagen import CampaignConfig, CampaignStream

        config = small_config()
        grid = PhaseSpaceGrid(n_x=16, n_v=8, box_length=config.box_length)
        campaign = CampaignConfig(
            base_config=config, v0_values=(0.2,), vth_values=(0.02,),
            experiments_per_combo=1, ps_grid=grid,
        )
        stream = CampaignStream(campaign, tmp_path / "camp", shard_size=2)
        data = stream.dataset()
        # "Training" here is fitting the preprocessing to the streamed
        # data — enough to make the checkpoint campaign-derived.
        normalizer = MinMaxNormalizer().fit(data.flat_inputs())
        model = build_mlp(
            input_size=grid.size, output_size=config.n_cells,
            hidden_size=8, rng=0,
        )
        solver = DLFieldSolver(model, grid, normalizer)
        entry = registry.register(
            solver, campaign_manifest_hash=stream.campaign_hash,
            training={"epochs": 0},
        )
        assert entry.lineage["campaign_manifest_hash"] == stream.campaign_hash
        ref = f"registry:{registry.root}:{entry.fingerprint[:10]}"
        with Client(background=False, model_dir=ref) as client:
            result = client.run(
                RunRequest(config=small_config(solver="dl"), id="lineage")
            )
        assert result.ok
        # Result -> fingerprint -> registry entry -> campaign hash.
        traced = registry.get(result.metadata["model_fingerprint"])
        assert traced.lineage["campaign_manifest_hash"] == stream.campaign_hash

    def test_ref_served_over_http(self, registry):
        from repro.server.app import serve_in_thread

        fingerprint = registry.register(tiny_solver()).fingerprint
        ref = f"registry:{registry.root}:{fingerprint[:10]}"
        config = small_config(solver="dl")
        with serve_in_thread(model_dir=ref) as server:
            with Client.connect(server.url) as client:
                result = client.run(RunRequest(config=config, id="reg-http"))
        assert result.ok
        assert result.metadata["model_fingerprint"] == fingerprint
