"""Scenario registry: coverage, neutrality, config round-trips, bitwise parity."""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.pic.grid import Grid1D
from repro.pic.interpolation import charge_density
from repro.pic.particles import load_two_stream
from repro.pic.scenarios import (
    available_scenarios,
    get_scenario,
    load_ensemble,
    load_scenario,
    register_scenario,
)
from repro.pic.simulation import EnsembleSimulation, TraditionalPIC

BUILTIN = ("bump_on_tail", "cold_beam", "landau_damping", "random_perturbation", "two_stream")


@pytest.fixture
def config() -> SimulationConfig:
    return SimulationConfig(n_cells=32, particles_per_cell=40, n_steps=10, vth=0.02, seed=5)


class TestRegistry:
    def test_builtins_registered(self):
        assert set(BUILTIN) <= set(available_scenarios())

    def test_available_is_sorted(self):
        assert list(available_scenarios()) == sorted(available_scenarios())

    def test_unknown_scenario_rejected_with_listing(self):
        with pytest.raises(ValueError, match="unknown scenario.*available"):
            get_scenario("does_not_exist")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scenario("two_stream")(lambda config, rng: None)

    def test_custom_scenario_roundtrip(self, config):
        name = "test_only_scenario"
        if name not in available_scenarios():

            @register_scenario(name)
            def _factory(cfg, rng):
                return load_two_stream(cfg, rng)

        cfg = config.with_updates(scenario=name)
        particles = load_scenario(cfg)
        assert len(particles) == cfg.n_particles


class TestEveryScenario:
    @pytest.mark.parametrize("name", BUILTIN)
    def test_charge_neutral_initial_conditions(self, config, name):
        cfg = config.with_updates(scenario=name)
        particles = load_scenario(cfg)
        grid = Grid1D(cfg.n_cells, cfg.box_length)
        rho = charge_density(grid, particles.x, cfg.particle_charge, order="cic")
        assert abs(rho.mean()) < 1e-12

    @pytest.mark.parametrize("name", BUILTIN)
    def test_shapes_and_domain(self, config, name):
        cfg = config.with_updates(scenario=name)
        particles = load_scenario(cfg)
        assert particles.x.shape == particles.v.shape == (cfg.n_particles,)
        assert np.all(particles.x >= 0) and np.all(particles.x < cfg.box_length)
        assert np.all(np.isfinite(particles.v))

    @pytest.mark.parametrize("name", BUILTIN)
    def test_roundtrips_through_config(self, config, name):
        cfg = config.with_updates(scenario=name)
        assert cfg.scenario == name
        assert cfg.with_updates(v0=0.3).scenario == name  # survives replace
        a = load_scenario(cfg)
        b = load_scenario(cfg)
        np.testing.assert_array_equal(a.x, b.x)
        np.testing.assert_array_equal(a.v, b.v)

    @pytest.mark.parametrize("name", BUILTIN)
    def test_simulation_runs_stably(self, config, name):
        cfg = config.with_updates(scenario=name)
        hist = TraditionalPIC(cfg).run(5)
        assert np.all(np.isfinite(hist.as_arrays()["total"]))

    @pytest.mark.parametrize("name", BUILTIN)
    def test_seed_changes_the_load(self, config, name):
        cfg = config.with_updates(scenario=name, loading="random")
        a = load_scenario(cfg)
        b = load_scenario(cfg.with_updates(seed=cfg.seed + 1))
        assert not np.array_equal(a.x, b.x)


class TestScenarioPhysics:
    def test_two_stream_matches_legacy_loader_bitwise(self, config):
        a = load_scenario(config)
        b = load_two_stream(config)
        np.testing.assert_array_equal(a.x, b.x)
        np.testing.assert_array_equal(a.v, b.v)

    def test_cold_beam_single_drift(self, config):
        cfg = config.with_updates(scenario="cold_beam", vth=0.0)
        particles = load_scenario(cfg)
        np.testing.assert_allclose(particles.v, cfg.v0)

    def test_landau_damping_rest_frame(self, config):
        cfg = config.with_updates(scenario="landau_damping")
        particles = load_scenario(cfg)
        assert abs(particles.v.mean()) < 5 * cfg.vth / np.sqrt(cfg.n_particles) + 1e-3

    def test_bump_on_tail_has_fast_minority(self, config):
        cfg = config.with_updates(scenario="bump_on_tail", v0=0.4, vth=0.02)
        particles = load_scenario(cfg)
        fast = np.sum(particles.v > 0.5 * cfg.v0)
        assert 0 < fast < 0.2 * cfg.n_particles

    def test_bump_fraction_from_extra(self, config):
        cfg = config.with_updates(
            scenario="bump_on_tail", v0=0.4, vth=0.0, extra={"bump_fraction": 0.25}
        )
        particles = load_scenario(cfg)
        assert np.sum(particles.v == cfg.v0) == round(0.25 * cfg.n_particles)

    def test_invalid_bump_fraction_rejected(self, config):
        cfg = config.with_updates(scenario="bump_on_tail", extra={"bump_fraction": 1.5})
        with pytest.raises(ValueError, match="bump_fraction"):
            load_scenario(cfg)


class TestLoadEnsemble:
    def test_stacks_rows_bitwise(self, config):
        configs = [config.with_updates(seed=s) for s in (1, 2, 3)]
        stacked = load_ensemble(configs)
        assert stacked.batch == 3
        for b, cfg in enumerate(configs):
            single = load_scenario(cfg)
            np.testing.assert_array_equal(stacked.x[b], single.x)
            np.testing.assert_array_equal(stacked.v[b], single.v)

    def test_mixed_scenarios_allowed(self, config):
        configs = [config.with_updates(scenario=name) for name in ("two_stream", "cold_beam")]
        stacked = load_ensemble(configs)
        assert stacked.batch == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            load_ensemble([])

    def test_rng_count_mismatch_rejected(self, config):
        with pytest.raises(ValueError, match="rngs"):
            load_ensemble([config], rngs=[0, 1])


class TestConfigValidation:
    def test_empty_scenario_rejected(self):
        with pytest.raises(ValueError, match="scenario"):
            SimulationConfig(scenario="")

    def test_unknown_scenario_fails_at_load_not_construction(self):
        cfg = SimulationConfig(scenario="not_registered_yet")
        with pytest.raises(ValueError, match="unknown scenario"):
            load_scenario(cfg)


class TestBatchOneBitwise:
    def test_ensemble_batch1_matches_traditional_bitwise(self, config):
        """The acceptance bar: batch=1 reproduces TraditionalPIC exactly."""
        single = TraditionalPIC(config)
        hist_single = single.run(10)
        ens = EnsembleSimulation.from_config(config, batch=1)
        hist_ens = ens.run(10)
        a, b = hist_single.as_arrays(), hist_ens.as_arrays()
        for key in ("time", "kinetic", "potential", "total", "momentum", "mode1"):
            col = b[key][:, 0] if b[key].ndim == 2 else b[key]
            np.testing.assert_array_equal(a[key], col)
        np.testing.assert_array_equal(single.particles.x, ens.particles.x[0])
        np.testing.assert_array_equal(single.particles.v, ens.particles.v[0])
        np.testing.assert_array_equal(single.efield, ens.efield[0])
