"""Networked service: HTTP endpoints, backpressure, drain, transports."""

import http.client
import json
import re
import socket
import time

import numpy as np
import pytest

from repro.api import (
    ApiError,
    Client,
    HttpTransport,
    InProcessTransport,
    RunRequest,
    RunResult,
    Transport,
)
from repro.config import SimulationConfig
from repro.server import HTTP_FOR_STATUS, SimulationServer, serve_in_thread
from repro.service import SimulationService


def small_config(**kwargs):
    base = dict(n_cells=16, particles_per_cell=10, n_steps=4, vth=0.02)
    base.update(kwargs)
    return SimulationConfig(**base)


def heavy_config(**kwargs):
    """A config slow enough to hold the admission queue open."""
    base = dict(n_cells=128, particles_per_cell=400, n_steps=400, seed=1)
    base.update(kwargs)
    return SimulationConfig(**base)


def raw_request(server, method, path, body=None, headers=None):
    """One HTTP round trip on a fresh connection, returning (status, bytes)."""
    conn = http.client.HTTPConnection(server.host, server.port, timeout=30)
    try:
        conn.request(method, path, body=body,
                     headers=headers or ({"Content-Type": "application/json"}
                                         if body is not None else {}))
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


@pytest.fixture(scope="module")
def server():
    with serve_in_thread(max_batch_size=8, max_wait=0.005) as srv:
        yield srv


class TestProtocol:
    def test_unknown_path_404(self, server):
        status, data = raw_request(server, "GET", "/nope")
        assert status == 404
        assert "/v1/run" in json.loads(data)["error"]

    def test_wrong_method_405(self, server):
        status, data = raw_request(server, "GET", "/v1/run")
        assert status == 405
        status, data = raw_request(server, "POST", "/v1/health")
        assert status == 405
        assert "not allowed" in json.loads(data)["error"]

    def test_malformed_json_body_400_error_result(self, server):
        status, data = raw_request(server, "POST", "/v1/run", b"{not json")
        assert status == 400
        result = RunResult.from_dict(json.loads(data))
        assert result.status == "error"
        assert "JSON" in result.error

    def test_wrong_api_version_400_error_result(self, server):
        body = json.dumps({"api_version": "v2", "id": "x",
                           "config": {"v0": 0.2}}).encode()
        status, data = raw_request(server, "POST", "/v1/run", body)
        assert status == 400
        payload = json.loads(data)
        assert payload["status"] == "error"
        assert payload["id"] == "x"
        assert "api_version" in payload["error"]

    def test_bad_config_400_error_result(self, server):
        body = json.dumps({"api_version": "v1", "id": "bad",
                           "config": {"n_particles": 4}}).encode()
        status, data = raw_request(server, "POST", "/v1/run", body)
        assert status == 400
        payload = json.loads(data)
        assert payload["status"] == "error"
        assert "n_particles" in payload["error"]

    def test_malformed_request_line_400(self, server):
        with socket.create_connection((server.host, server.port), timeout=30) as s:
            s.sendall(b"BOGUS\r\n\r\n")
            data = s.recv(65536)
        assert b"400" in data.split(b"\r\n", 1)[0]

    def test_chunked_encoding_rejected_411(self, server):
        with socket.create_connection((server.host, server.port), timeout=30) as s:
            s.sendall(b"POST /v1/run HTTP/1.1\r\n"
                      b"Transfer-Encoding: chunked\r\n\r\n")
            data = s.recv(65536)
        assert b"411" in data.split(b"\r\n", 1)[0]

    def test_keep_alive_serves_many_requests_per_connection(self, server):
        conn = http.client.HTTPConnection(server.host, server.port, timeout=30)
        try:
            for _ in range(3):
                conn.request("GET", "/v1/health")
                response = conn.getresponse()
                assert response.status == 200
                response.read()
        finally:
            conn.close()


class TestHealthAndMetrics:
    def test_health_schema(self, server):
        status, data = raw_request(server, "GET", "/v1/health")
        assert status == 200
        payload = json.loads(data)
        assert payload["status"] == "ok"
        assert payload["api_version"] == "v1"
        assert payload["draining"] is False
        assert isinstance(payload["inflight"], int)
        assert isinstance(payload["connections"], int)

    def test_metrics_schema_and_counts(self, server):
        with Client.connect(server.url) as client:
            client.run(RunRequest(config=small_config(seed=101), id="m-1"))
        status, data = raw_request(server, "GET", "/v1/metrics")
        assert status == 200
        payload = json.loads(data)
        assert payload["api_version"] == "v1"
        requests = payload["requests"]
        assert requests["total"] >= 1
        assert requests["by_endpoint"].get("/v1/run", 0) >= 1
        assert set(requests["by_status"]) == {"ok", "error", "shed", "timeout"}
        assert payload["queue"]["max_pending"] == server.max_pending
        assert payload["connections"]["limit"] == server.max_connections
        assert 0.0 <= payload["cache_hit_ratio"] <= 1.0
        hist = payload["batch_size_histogram"]
        assert sum(hist.values()) >= 1 and all(
            int(size) >= 1 for size in hist
        )
        latency = payload["latency"]
        assert latency["count"] >= 1
        assert 0.0 <= latency["p50_s"] <= latency["p99_s"] <= latency["max_s"]
        assert payload["http_responses"].get("200", 0) >= 1
        assert "service" in payload
        pool = payload["pool"]
        assert pool["kind"] == "inline"
        assert pool["groups_executed"] >= 1
        assert pool["runs_executed"] >= 1


class TestRunEndpoint:
    def test_remote_result_bitwise_equals_in_process(self, server):
        request = RunRequest(config=small_config(seed=7), id="parity",
                             phase_space=True)
        with Client.connect(server.url) as remote:
            over_http = remote.run(request)
        with Client(background=False) as local:
            in_process = local.run(request)
        assert over_http.status == "ok"
        assert over_http.key == in_process.key
        assert sorted(over_http.series) == sorted(in_process.series)
        for name in in_process.series:
            a = np.asarray(over_http.series[name])
            b = np.asarray(in_process.series[name])
            assert a.dtype == b.dtype
            np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(over_http.efield, in_process.efield)
        np.testing.assert_array_equal(over_http.final_x, in_process.final_x)
        np.testing.assert_array_equal(over_http.final_v, in_process.final_v)

    def test_float32_tier_round_trips_exactly(self, server):
        request = RunRequest(
            config=small_config(seed=8, dtype="float32"), id="f32")
        with Client.connect(server.url) as remote:
            over_http = remote.run(request)
        with Client(background=False) as local:
            in_process = local.run(request)
        assert np.asarray(over_http.series["kinetic"]).dtype == np.float32
        for name in in_process.series:
            np.testing.assert_array_equal(
                np.asarray(over_http.series[name]),
                np.asarray(in_process.series[name]),
            )

    def test_execution_failure_travels_as_500_error_result(self, server):
        request = RunRequest(
            config=small_config(solver="dl"), id="no-model")
        with Client.connect(server.url, raise_on_error=False) as client:
            result = client.run(request)
        assert result.status == "error"
        assert "dl_solver" in result.error
        with Client.connect(server.url) as client:
            with pytest.raises(ApiError, match="no-model") as excinfo:
                client.run(request)
            assert excinfo.value.status == "error"

    def test_repeat_request_hits_the_store(self, server):
        request = RunRequest(config=small_config(seed=55), id="cache-me")
        with Client.connect(server.url) as client:
            first = client.run(request)
            second = client.run(request)
        assert first.key == second.key
        assert second.cache_hit and second.submit_status == "cached"


class TestBatchEndpoint:
    def test_jsonl_round_trip_order_and_per_line_errors(self, server):
        lines = [
            json.dumps(RunRequest(config=small_config(seed=31),
                                  id="b-0").to_dict()),
            "# a comment",
            "",
            "{broken json",
            json.dumps({"api_version": "v1", "id": "b-bad",
                        "config": {"nope": 1}}),
            json.dumps(RunRequest(config=small_config(seed=32),
                                  id="b-1").to_dict()),
        ]
        status, data = raw_request(
            server, "POST", "/v1/batch", "\n".join(lines).encode())
        assert status == 200
        results = [RunResult.from_dict(json.loads(line))
                   for line in data.decode().splitlines()]
        assert [r.id for r in results] == ["b-0", "request-4", "b-bad", "b-1"]
        assert [r.status for r in results] == ["ok", "error", "error", "ok"]
        assert "line 4" in results[1].error
        assert "nope" in results[2].error

    def test_batch_lines_coalesce_into_engine_batches(self):
        with serve_in_thread(max_batch_size=8, max_wait=0.05) as srv:
            lines = [
                json.dumps(RunRequest(config=small_config(seed=40 + i),
                                      id=f"c-{i}").to_dict())
                for i in range(4)
            ]
            status, data = raw_request(
                srv, "POST", "/v1/batch", "\n".join(lines).encode())
            assert status == 200
            assert all(json.loads(line)["status"] == "ok"
                       for line in data.decode().splitlines())
            histogram = srv.service.batch_size_histogram
        # All four structurally-identical requests landed in one batch.
        assert histogram.get(4, 0) >= 1


class TestConcurrentParity:
    def test_many_connections_bitwise_parity(self, server):
        requests = [RunRequest(config=small_config(seed=200 + i), id=f"p-{i}")
                    for i in range(12)]
        with Client.connect(server.url, max_connections=12) as remote:
            over_http = remote.map(requests)
        with Client(background=False) as local:
            in_process = local.map(requests)
        assert [r.id for r in over_http] == [r.id for r in in_process]
        for a, b in zip(over_http, in_process):
            assert a.status == "ok" and a.key == b.key
            for name in b.series:
                np.testing.assert_array_equal(
                    np.asarray(a.series[name]), np.asarray(b.series[name])
                )


class TestBackpressure:
    def test_zero_capacity_sheds_everything(self):
        with serve_in_thread(max_pending=0) as srv:
            with Client.connect(srv.url, raise_on_error=False) as client:
                result = client.run(RunRequest(config=small_config(), id="s-0"))
            assert result.status == "shed"
            assert "retry later" in result.error
            status, data = raw_request(
                srv, "POST", "/v1/run",
                json.dumps(RunRequest(config=small_config(),
                                      id="s-1").to_dict()).encode())
            assert status == HTTP_FOR_STATUS["shed"] == 503
            assert json.loads(data)["status"] == "shed"
            # Health stays serviceable while shedding.
            health, payload = raw_request(srv, "GET", "/v1/health")
            assert health == 200 and json.loads(payload)["status"] == "ok"
            assert srv.metrics.by_status["shed"] == 2

    def test_shed_raises_apierror_with_status(self):
        with serve_in_thread(max_pending=0) as srv:
            with Client.connect(srv.url) as client:
                with pytest.raises(ApiError, match="shed") as excinfo:
                    client.run(RunRequest(config=small_config(), id="s-2"))
        assert excinfo.value.status == "shed"
        assert excinfo.value.result.id == "s-2"

    def test_overload_sheds_then_recovers(self):
        with serve_in_thread(max_pending=1, max_wait=0.001) as srv:
            with Client.connect(srv.url, max_connections=4,
                                raise_on_error=False) as client:
                slow = client.submit(RunRequest(config=heavy_config(),
                                                id="slow"))
                deadline = time.time() + 30
                while srv._inflight == 0 and time.time() < deadline:
                    time.sleep(0.001)
                fast = client.map([
                    RunRequest(config=small_config(seed=70 + i), id=f"f-{i}")
                    for i in range(3)
                ])
                slow_result = slow.result(timeout=120)
                assert slow_result.status == "ok"
                statuses = {r.status for r in fast}
                assert "shed" in statuses
                # The queue drained: the next request is served normally.
                after = client.run(RunRequest(config=small_config(seed=99),
                                              id="after"))
                assert after.status == "ok"


class TestTimeout:
    def test_slow_request_times_out_504(self):
        with serve_in_thread(request_timeout=0.02) as srv:
            with Client.connect(srv.url, raise_on_error=False) as client:
                result = client.run(RunRequest(config=heavy_config(seed=2),
                                               id="deadline"))
            assert result.status == "timeout"
            assert "deadline" in result.error
            assert srv.metrics.by_status["timeout"] == 1
            status, _ = raw_request(srv, "GET", "/v1/health")
            assert status == 200

    def test_fast_request_beats_generous_deadline(self):
        with serve_in_thread(request_timeout=120.0) as srv:
            with Client.connect(srv.url) as client:
                result = client.run(RunRequest(config=small_config(), id="quick"))
            assert result.status == "ok"


class TestConnectionLimit:
    def test_excess_connection_rejected_503(self):
        with serve_in_thread(max_connections=1) as srv:
            first = http.client.HTTPConnection(srv.host, srv.port, timeout=30)
            try:
                first.request("GET", "/v1/health")
                assert first.getresponse().status == 200
                # keep-alive holds the only slot open
                second = http.client.HTTPConnection(
                    srv.host, srv.port, timeout=30)
                try:
                    second.request("GET", "/v1/health")
                    response = second.getresponse()
                    assert response.status == 503
                    assert "connection limit" in json.loads(
                        response.read())["error"]
                finally:
                    second.close()
            finally:
                first.close()
            assert srv.metrics.connections_rejected == 1


class TestGracefulDrain:
    def test_inflight_requests_resolve_before_shutdown(self):
        requests = [
            RunRequest(config=small_config(seed=300 + i, n_cells=64,
                                           particles_per_cell=100,
                                           n_steps=120), id=f"d-{i}")
            for i in range(6)
        ]
        with serve_in_thread(max_wait=0.02) as srv:
            transport = HttpTransport(srv.url, max_connections=6)
            try:
                futures = [transport.submit(r) for r in requests]
                # Exit (= drain) only once every request reached the
                # server: admitted (inflight) or already answered (done).
                deadline = time.time() + 60
                while (srv._inflight + sum(f.done() for f in futures) < 6
                       and time.time() < deadline):
                    time.sleep(0.001)
            except BaseException:
                transport.close()
                raise
        # leaving the context drained: every admitted request was answered
        results = [f.result(timeout=30) for f in futures]
        transport.close()
        assert {r.status for r in results} == {"ok"}
        assert [r.id for r in results] == [r.id for r in requests]

    def test_draining_server_reports_and_sheds(self):
        with serve_in_thread() as srv:
            pass  # context exit closed it
        assert srv._draining is True
        result_future = srv._transport.submit(
            RunRequest(config=small_config(), id="late"))
        # The owned service is closed; late submissions fail cleanly.
        assert result_future.result(timeout=5).status == "error"


class TestTransports:
    def test_transport_protocol_runtime_check(self):
        service = SimulationService(start=False)
        try:
            assert isinstance(InProcessTransport(service), Transport)
        finally:
            service.close()
        transport = HttpTransport("http://127.0.0.1:1")
        try:
            assert isinstance(transport, Transport)
        finally:
            transport.close()

    def test_client_rejects_service_and_transport_together(self):
        service = SimulationService(start=False)
        try:
            transport = InProcessTransport(service)
            with pytest.raises(ValueError, match="not both"):
                Client(service, transport=transport)
        finally:
            service.close()

    def test_explicit_in_process_transport_matches_default_client(self):
        request = RunRequest(config=small_config(seed=5), id="same")
        service = SimulationService(start=False)
        with Client(transport=InProcessTransport(service,
                                                 owns_service=True)) as client:
            via_transport = client.run(request)
        with Client(background=False) as client:
            via_default = client.run(request)
        assert via_transport.key == via_default.key
        for name in via_default.series:
            np.testing.assert_array_equal(
                np.asarray(via_transport.series[name]),
                np.asarray(via_default.series[name]),
            )

    def test_http_transport_rejects_bad_urls(self):
        with pytest.raises(ValueError, match="http://"):
            HttpTransport("ftp://example:1")
        with pytest.raises(ValueError, match="path"):
            HttpTransport("http://example:1/v1/run")
        with pytest.raises(ValueError, match="max_connections"):
            HttpTransport("http://example:1", max_connections=0)

    def test_connect_client_has_no_in_process_service(self, server):
        with Client.connect(server.url) as client:
            assert isinstance(client.transport, HttpTransport)
            with pytest.raises(AttributeError, match="no in-process service"):
                client.service

    def test_connection_refused_travels_as_error_result(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        with Client.connect(f"http://127.0.0.1:{free_port}",
                            raise_on_error=False) as client:
            result = client.run(RunRequest(config=small_config(), id="nobody"))
        assert result.status == "error"
        assert result.id == "nobody"

    def test_http_transport_stats_reads_server_metrics(self, server):
        transport = HttpTransport(server.url)
        try:
            stats = transport.stats
        finally:
            transport.close()
        assert stats.get("api_version") == "v1"
        assert "requests" in stats


class TestServerValidation:
    def test_constructor_bounds(self):
        with pytest.raises(ValueError, match="max_pending"):
            SimulationServer(max_pending=-1)
        with pytest.raises(ValueError, match="max_connections"):
            SimulationServer(max_connections=0)
        with pytest.raises(ValueError, match="request_timeout"):
            SimulationServer(request_timeout=0.0)


class TestMetricsSchema:
    """Golden schema: the full /v1/metrics JSON key set is locked here.

    A key appearing or disappearing is an API change and must update
    this test (and the README observability table) deliberately.
    """

    TOP_LEVEL = {
        "api_version", "requests", "parse_failures", "http_responses",
        "connections", "queue", "cache_hit_ratio", "batch_size_histogram",
        "latency", "stages", "traces", "service", "pool", "campaign",
        "registry",
    }

    def test_golden_key_set(self, server):
        with Client.connect(server.url) as client:
            client.run(RunRequest(config=small_config(seed=201), id="g-1"))
        status, data = raw_request(server, "GET", "/v1/metrics")
        assert status == 200
        payload = json.loads(data)
        assert set(payload) == self.TOP_LEVEL
        assert set(payload["requests"]) == {"total", "by_endpoint", "by_status"}
        assert set(payload["parse_failures"]) == {"total", "by_endpoint"}
        assert set(payload["connections"]) == {"open", "total", "rejected", "limit"}
        assert set(payload["queue"]) == {
            "inflight", "max_pending", "service_pending",
        }
        assert set(payload["latency"]) == {
            "count", "p50_s", "p90_s", "p99_s", "max_s",
        }
        for hist in payload["stages"].values():
            assert set(hist) == {"count", "sum_s", "max_s", "buckets"}
        # Executed requests populate the canonical stage histograms.
        assert {"batch_wait", "queue_wait", "exec", "store", "wall"} <= set(
            payload["stages"]
        )
        assert payload["traces"] == {}  # tracing off on this server
        assert set(payload["campaign"]) == {"shards_total", "shards_by_status"}
        assert set(payload["registry"]) == {"models"}

    def test_prometheus_format_parses(self, server):
        status, data = raw_request(
            server, "GET", "/v1/metrics?format=prometheus")
        assert status == 200
        text = data.decode()
        line_re = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9.einf+-]+$"
        )
        for line in text.strip().splitlines():
            if not line.startswith("#"):
                assert line_re.match(line), line
        assert "repro_requests_total" in text
        assert "repro_stage_duration_seconds_bucket" in text
        assert 'quantile="0.5"' in text
        assert "repro_campaign_shards_total" in text
        assert "repro_registry_models" in text

    def test_unknown_metrics_format_400(self, server):
        status, data = raw_request(server, "GET", "/v1/metrics?format=xml")
        assert status == 400
        assert "format" in json.loads(data)["error"]

    def test_parse_failures_counted_separately(self, server):
        before = json.loads(raw_request(server, "GET", "/v1/metrics")[1])
        raw_request(server, "POST", "/v1/run", b"{not json")
        after = json.loads(raw_request(server, "GET", "/v1/metrics")[1])
        assert (after["parse_failures"]["total"]
                == before["parse_failures"]["total"] + 1)
        assert after["parse_failures"]["by_endpoint"].get("/v1/run", 0) >= 1
        # The garbage request reaches neither the status counters nor
        # the execution-latency reservoir.
        assert after["requests"]["by_status"] == before["requests"]["by_status"]
        assert after["latency"]["count"] == before["latency"]["count"]

    def test_trace_endpoint_404_when_tracing_off(self, server):
        status, data = raw_request(server, "GET", "/v1/trace/deadbeef")
        assert status == 404
        assert "--trace" in json.loads(data)["error"]


class TestTracing:
    @pytest.fixture(scope="class")
    def traced_server(self):
        with serve_in_thread(max_batch_size=8, max_wait=0.005,
                             tracing=True) as srv:
            yield srv

    def test_end_to_end_span_tree(self, traced_server):
        with Client.connect(traced_server.url, tracing=True) as client:
            result = client.run(
                RunRequest(config=small_config(seed=210), id="tr-1"))
        trace_id = result.timings["trace_id"]
        status, data = raw_request(
            traced_server, "GET", f"/v1/trace/{trace_id}")
        assert status == 200
        payload = json.loads(data)
        assert payload["trace_id"] == trace_id
        assert payload["complete"] is True
        names = set()

        def collect(nodes):
            for node in nodes:
                names.add(node["name"])
                collect(node["children"])

        collect(payload["spans"])
        assert {"client.request", "client.http", "server.request",
                "service.submit", "executor.dispatch", "executor.worker_run",
                "engine.run", "engine.steps"} <= names
        # The merged tree nests the server half under the client's
        # HTTP span (clock-aligned via the propagation headers).
        (root,) = payload["spans"]
        assert root["name"] == "client.request"
        (http_span,) = root["children"]
        assert http_span["name"] == "client.http"
        assert http_span["children"][0]["name"] == "server.request"

    def test_stage_timings_in_remote_results(self, traced_server):
        with Client.connect(traced_server.url) as client:
            result = client.run(
                RunRequest(config=small_config(seed=211), id="tr-2"))
        assert {"wall_s", "batch_wait_s", "queue_wait_s", "exec_s",
                "store_s"} <= set(result.timings)
        total_stages = (result.timings["batch_wait_s"]
                        + result.timings["queue_wait_s"]
                        + result.timings["exec_s"])
        assert total_stages <= result.timings["wall_s"] * 1.5 + 0.5

    def test_trace_listing_and_last(self, traced_server):
        with Client.connect(traced_server.url) as client:
            result = client.run(
                RunRequest(config=small_config(seed=212), id="tr-3"))
        status, data = raw_request(traced_server, "GET", "/v1/trace")
        assert status == 200
        listing = json.loads(data)
        assert result.timings["trace_id"] in listing["traces"]
        assert listing["buffer"]["completed"] >= 1
        status, data = raw_request(traced_server, "GET", "/v1/trace/last")
        assert status == 200
        assert json.loads(data)["n_spans"] >= 1

    def test_unknown_trace_404(self, traced_server):
        status, _ = raw_request(traced_server, "GET", f"/v1/trace/{'0' * 8}")
        assert status == 404
        status, _ = raw_request(traced_server, "GET", "/v1/trace/a/b/c")
        assert status == 405

    def test_span_merge_validates_payload(self, traced_server):
        with Client.connect(traced_server.url) as client:
            result = client.run(
                RunRequest(config=small_config(seed=213), id="tr-4"))
        trace_id = result.timings["trace_id"]
        status, data = raw_request(
            traced_server, "POST", f"/v1/trace/{trace_id}/spans",
            json.dumps({"spans": [{"name": "x"}]}).encode())
        assert status == 400
        assert "span_id" in json.loads(data)["error"]
        status, _ = raw_request(
            traced_server, "POST", "/v1/trace/unknown/spans",
            json.dumps({"spans": []}).encode())
        assert status == 404

    def test_tracing_preserves_bitwise_parity(self, server, traced_server):
        request = RunRequest(config=small_config(seed=214), id="parity-tr",
                             phase_space=True)
        with Client.connect(server.url) as plain_client:
            plain = plain_client.run(request)
        with Client.connect(traced_server.url, tracing=True) as traced_client:
            traced = traced_client.run(request)
        assert traced.key == plain.key
        for name, values in plain.series.items():
            a = np.asarray(traced.series[name])
            b = np.asarray(values)
            assert a.dtype == b.dtype
            np.testing.assert_array_equal(a, b, err_msg=f"drift in {name!r}")
        np.testing.assert_array_equal(traced.final_x, plain.final_x)
        np.testing.assert_array_equal(traced.final_v, plain.final_v)
