"""Micro-batching simulation service: batcher policy, store, service."""

import threading

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.pic.simulation import TraditionalPIC
from repro.service import (
    STATUS_CACHED,
    STATUS_INFLIGHT,
    STATUS_QUEUED,
    MicroBatcher,
    PendingRequest,
    ResultStore,
    SimulationResult,
    SimulationService,
    group_key,
    parse_request,
    read_requests,
    result_key,
)


@pytest.fixture
def config():
    return SimulationConfig(n_cells=16, particles_per_cell=10, n_steps=3, vth=0.01)


def _pending(config, solver="traditional", at=0.0):
    from concurrent.futures import Future

    return PendingRequest(
        key=result_key(config, solver) if solver == "traditional" else f"dl-{id(config)}",
        config=config,
        solver=solver,
        future=Future(),
        submitted_at=at,
    )


class TestGroupKey:
    def test_structural_fields_separate_groups(self, config):
        base = group_key(config)
        assert group_key(config.with_updates(n_cells=32)) != base
        assert group_key(config.with_updates(n_steps=7)) != base
        assert group_key(config.with_updates(poisson_solver="fd")) != base
        assert group_key(config.with_updates(interpolation="ngp")) != base
        assert group_key(config, solver="dl") != base

    def test_physics_fields_share_a_group(self, config):
        base = group_key(config)
        assert group_key(config.with_updates(scenario="cold_beam", v0=0.4)) == base
        assert group_key(config.with_updates(seed=99)) == base
        assert group_key(config.with_updates(extra={"bump_fraction": 0.2})) == base


class TestMicroBatcher:
    def test_incompatible_configs_never_cobatched(self, config):
        batcher = MicroBatcher(max_batch_size=4, max_wait=10.0)
        batcher.add(_pending(config))
        batcher.add(_pending(config.with_updates(n_cells=32)))
        batcher.add(_pending(config.with_updates(n_steps=9)))
        batcher.add(_pending(config, solver="dl"))
        assert batcher.n_groups == 4
        # none full, none past deadline: nothing flushes
        assert batcher.take_ready(now=1.0) == []
        groups = batcher.drain()
        assert sorted(len(g) for g in groups) == [1, 1, 1, 1]

    def test_size_flush(self, config):
        batcher = MicroBatcher(max_batch_size=2, max_wait=10.0)
        batcher.add(_pending(config.with_updates(seed=0)))
        batcher.add(_pending(config.with_updates(seed=1)))
        batcher.add(_pending(config.with_updates(seed=2)))
        groups = batcher.take_ready(now=0.0)
        assert [len(g) for g in groups] == [2]
        assert len(batcher) == 1  # the third request stays pending

    def test_deadline_flush_fires_with_partial_batch(self, config):
        batcher = MicroBatcher(max_batch_size=8, max_wait=0.5)
        batcher.add(_pending(config, at=100.0))
        assert batcher.take_ready(now=100.4) == []
        groups = batcher.take_ready(now=100.5)
        assert [len(g) for g in groups] == [1]
        assert len(batcher) == 0

    def test_overfull_bucket_is_chunked(self, config):
        batcher = MicroBatcher(max_batch_size=2, max_wait=0.0)
        for s in range(5):
            batcher.add(_pending(config.with_updates(seed=s), at=0.0))
        groups = batcher.take_ready(now=1.0)
        assert sorted(len(g) for g in groups) == [1, 2, 2]

    def test_next_deadline_tracks_oldest(self, config):
        batcher = MicroBatcher(max_batch_size=8, max_wait=1.0)
        assert batcher.next_deadline() is None
        batcher.add(_pending(config, at=5.0))
        batcher.add(_pending(config.with_updates(n_cells=32), at=3.0))
        assert batcher.next_deadline() == 4.0


def _make_result(config, key="traditional-x", n=4):
    rng = np.random.default_rng(0)
    series = {
        name: rng.normal(size=n)
        for name in ("time", "kinetic", "potential", "total", "momentum", "mode1")
    }
    return SimulationResult(
        key=key, config=config, solver="traditional",
        series=series, efield=rng.normal(size=config.n_cells),
    )


class TestResultStore:
    def test_memory_round_trip(self, config):
        store = ResultStore(capacity=4)
        result = _make_result(config)
        store.put(result)
        assert store.get(result.key) is result

    def test_lru_eviction(self, config):
        store = ResultStore(capacity=2)
        a, b, c = (_make_result(config, key=f"traditional-{i}") for i in "abc")
        store.put(a)
        store.put(b)
        store.get(a.key)  # refresh a; b is now least recent
        store.put(c)
        assert store.get(b.key) is None
        assert store.get(a.key) is a

    def test_disk_round_trip_bitwise(self, config, tmp_path):
        store = ResultStore(capacity=2, directory=tmp_path)
        result = _make_result(config)
        store.put(result)
        rehydrated = ResultStore(capacity=2, directory=tmp_path).get(result.key)
        assert rehydrated is not None
        assert rehydrated.config == config
        assert rehydrated.solver == result.solver
        for name, values in result.series.items():
            np.testing.assert_array_equal(rehydrated.series[name], values)
        np.testing.assert_array_equal(rehydrated.efield, result.efield)

    def test_served_arrays_are_frozen(self, config):
        # shared between all requesters of a key: in-place edits must fail
        result = _make_result(config)
        with pytest.raises(ValueError, match="read-only"):
            result.efield[0] = 99.0
        with pytest.raises(ValueError, match="read-only"):
            result.series["total"][0] = 99.0

    def test_no_temp_files_left_behind(self, config, tmp_path):
        store = ResultStore(capacity=2, directory=tmp_path)
        store.put(_make_result(config))
        names = [p.name for p in tmp_path.iterdir()]
        assert all(not n.startswith(".tmp-") for n in names)
        assert any(n.endswith(".npz") for n in names)

    def test_eviction_falls_back_to_disk(self, config, tmp_path):
        store = ResultStore(capacity=1, directory=tmp_path)
        a = _make_result(config, key="traditional-a")
        b = _make_result(config, key="traditional-b")
        store.put(a)
        store.put(b)  # evicts a from memory; disk copy remains
        again = store.get("traditional-a")
        assert again is not None and again.from_cache
        np.testing.assert_array_equal(again.efield, a.efield)
        assert store.disk_hits == 1

    def test_result_key_separates_families(self, config):
        assert result_key(config, "traditional") != result_key(
            config, "dl", solver_fingerprint="f" * 64
        )
        with pytest.raises(ValueError, match="fingerprint"):
            result_key(config, "dl")
        with pytest.raises(ValueError, match="solver family"):
            result_key(config, "magic")


class TestSimulationService:
    """Synchronous-mode (start=False) service: deterministic, thread-free."""

    def test_served_result_matches_solo_run_bitwise(self, config):
        with SimulationService(start=False) as service:
            future = service.submit(config)
            service.flush()
            result = future.result(timeout=0)
        solo = TraditionalPIC(config)
        series = solo.run(config.n_steps).as_arrays()
        for name in ("time", "kinetic", "potential", "total", "momentum", "mode1"):
            np.testing.assert_array_equal(result.series[name], series[name])
        np.testing.assert_array_equal(result.efield, solo.efield)

    def test_cache_hit_skips_engine_execution(self, config):
        with SimulationService(start=False) as service:
            first = service.submit(config)
            service.flush()
            executed = service.stats["executed_runs"]
            again, status = service.submit_with_status(config)
            assert status == STATUS_CACHED
            # A cached delivery is a lightweight copy with its own
            # per-delivery timings; the result arrays are shared.
            served, original = again.result(timeout=0), first.result(timeout=0)
            assert served == original
            assert served.series["total"] is original.series["total"]
            assert set(served.timings) == {"store_s"}
            assert service.stats["executed_runs"] == executed
            assert service.stats["cache_hits"] == 1

    def test_inflight_dedup_shares_one_future(self, config):
        with SimulationService(start=False) as service:
            fut_a, status_a = service.submit_with_status(config)
            fut_b, status_b = service.submit_with_status(config)
            assert (status_a, status_b) == (STATUS_QUEUED, STATUS_INFLIGHT)
            assert fut_a is fut_b
            assert service.stats["pending"] == 1  # one engine row for both
            service.flush()
            assert fut_a.result(timeout=0) is fut_b.result(timeout=0)

    def test_incompatible_requests_execute_in_separate_batches(self, config):
        with SimulationService(max_batch_size=8, start=False) as service:
            futures = [
                service.submit(config),
                service.submit(config.with_updates(seed=1)),
                service.submit(config.with_updates(n_steps=5)),
                service.submit(config.with_updates(n_cells=32)),
            ]
            service.flush()
            results = [f.result(timeout=0) for f in futures]
        assert service.stats["batches"] == 3
        assert len(results[0].series["time"]) == config.n_steps + 1
        assert len(results[2].series["time"]) == 6

    def test_mixed_scenarios_cobatch(self, config):
        scenarios = ["two_stream", "cold_beam", "landau_damping", "bump_on_tail"]
        with SimulationService(max_batch_size=8, start=False) as service:
            futures = [
                service.submit(config.with_updates(scenario=s, seed=i))
                for i, s in enumerate(scenarios)
            ]
            service.flush()
            for future in futures:
                future.result(timeout=0)
        assert service.stats["batches"] == 1
        assert service.stats["executed_runs"] == 4

    def test_engine_failure_propagates_to_every_requester(self, config):
        bad = config.with_updates(scenario="bump_on_tail", extra={"bump_fraction": 5.0})
        with SimulationService(start=False) as service:
            future = service.submit(bad)
            service.flush()
            with pytest.raises(ValueError, match="bump_fraction"):
                future.result(timeout=0)
            assert service.stats["errors"] == 1
            assert service.stats["pending"] == 0
        # the key is free again: a corrected submit is not poisoned
        with SimulationService(start=False) as service:
            future = service.submit(bad)
            service.flush()
            with pytest.raises(ValueError):
                future.result(timeout=0)

    def test_unknown_scenario_rejected_at_submit(self, config):
        with SimulationService(start=False) as service:
            with pytest.raises(ValueError, match="unknown scenario"):
                service.submit(config.with_updates(scenario="nope"))

    def test_dl_requests_need_a_solver(self, config):
        with SimulationService(start=False) as service:
            with pytest.raises(ValueError, match="no DL solver"):
                service.submit(config, solver="dl")

    def test_submit_after_close_rejected(self, config):
        service = SimulationService(start=False)
        service.close()
        with pytest.raises(RuntimeError, match="closed"):
            service.submit(config)

    def test_close_executes_pending_requests(self, config):
        service = SimulationService(start=False)
        future = service.submit(config)
        service.close()
        assert future.result(timeout=0).config == config


class TestDLService:
    @pytest.fixture
    def dl_solver(self, config):
        from repro.dlpic import DLFieldSolver
        from repro.models.architectures import build_mlp
        from repro.phasespace.binning import PhaseSpaceGrid
        from repro.phasespace.normalization import MinMaxNormalizer

        grid = PhaseSpaceGrid(n_x=16, n_v=8, box_length=config.box_length)
        model = build_mlp(input_size=grid.size, output_size=config.n_cells,
                          hidden_size=8, rng=0)
        return DLFieldSolver(
            model, grid, MinMaxNormalizer.from_dict({"minimum": 0.0, "maximum": 50.0})
        )

    def test_dl_result_matches_solo_dlpic_bitwise(self, config, dl_solver):
        from repro.dlpic import DLPIC

        with SimulationService(dl_solver=dl_solver, start=False) as service:
            future = service.submit(config, solver="dl")
            service.flush()
            result = future.result(timeout=0)
        solo = DLPIC(config, dl_solver)
        series = solo.run(config.n_steps).as_arrays()
        for name in ("kinetic", "potential", "total", "momentum", "mode1"):
            np.testing.assert_array_equal(result.series[name], series[name])
        np.testing.assert_array_equal(result.efield, solo.efield)

    def test_dl_and_traditional_results_have_distinct_slots(self, config, dl_solver):
        with SimulationService(dl_solver=dl_solver, start=False) as service:
            fut_trad = service.submit(config)
            fut_dl, status = service.submit_with_status(config, solver="dl")
            assert status == STATUS_QUEUED  # not deduped against the traditional run
            service.flush()
            assert fut_trad.result(timeout=0).key != fut_dl.result(timeout=0).key
        assert service.stats["batches"] == 2


class TestThreadedService:
    """The background worker: deadline flushes and concurrent submits."""

    def test_deadline_flush_completes_partial_batch(self, config):
        with SimulationService(max_batch_size=64, max_wait=0.02) as service:
            futures = [service.submit(config.with_updates(seed=s)) for s in range(3)]
            results = [f.result(timeout=30) for f in futures]
        assert service.stats["batches"] == 1  # one partial flush, not 3
        assert [r.config.seed for r in results] == [0, 1, 2]

    def test_concurrent_submitters_are_coalesced(self, config):
        futures = [None] * 8
        with SimulationService(max_batch_size=8, max_wait=0.05) as service:
            def submit(i):
                futures[i] = service.submit(config.with_updates(seed=i % 4))

            threads = [threading.Thread(target=submit, args=(i,)) for i in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            results = [f.result(timeout=30) for f in futures]
        # 8 requests over 4 distinct configs: at most 4 engine rows ran
        assert service.stats["executed_runs"] + service.stats["cache_hits"] <= 8
        assert service.stats["executed_runs"] <= 4
        for i, result in enumerate(results):
            assert result.config.seed == i % 4


class TestVlasovService:
    """solver=vlasov requests batch, dedup and store like PIC requests."""

    @pytest.fixture
    def vconfig(self):
        return SimulationConfig(
            n_cells=16, n_steps=3, vth=0.03, v0=0.2, solver="vlasov",
            extra={"n_v": 24},
        )

    def test_vlasov_results_match_solo_runs_bitwise(self, vconfig):
        from repro.pic.scenarios import load_distribution
        from repro.vlasov import VlasovSimulation, vlasov_config_from

        configs = [
            vconfig,
            vconfig.with_updates(scenario="landau_damping", vth=0.05),
            vconfig.with_updates(scenario="bump_on_tail", v0=0.3),
        ]
        with SimulationService(start=False) as service:
            futures = [service.submit(cfg) for cfg in configs]
            service.flush()
            results = [f.result(timeout=0) for f in futures]
        assert service.stats["batches"] == 1  # one engine for all three
        for cfg, result in zip(configs, results):
            solo = VlasovSimulation(vlasov_config_from(cfg), f0=load_distribution(cfg))
            series = solo.run(cfg.n_steps)
            for name in ("time", "kinetic", "potential", "total", "momentum", "mode1"):
                np.testing.assert_array_equal(result.series[name], series[name])
            np.testing.assert_array_equal(result.efield, solo.efield)

    def test_vlasov_and_traditional_never_cobatch(self, vconfig):
        with SimulationService(start=False) as service:
            fut_v = service.submit(vconfig)
            fut_t = service.submit(vconfig.with_updates(solver="traditional"))
            service.flush()
            assert fut_v.result(timeout=0).key != fut_t.result(timeout=0).key
        assert service.stats["batches"] == 2

    def test_vlasov_store_and_dedup_behave_like_pic(self, vconfig, tmp_path):
        store = ResultStore(capacity=4, directory=tmp_path)
        with SimulationService(store=store, start=False) as service:
            first, status_first = service.submit_with_status(vconfig)
            dup, status_dup = service.submit_with_status(vconfig)
            assert (status_first, status_dup) == (STATUS_QUEUED, STATUS_INFLIGHT)
            assert dup is first
            service.flush()
            again, status_again = service.submit_with_status(vconfig)
            assert status_again == STATUS_CACHED
            # Per-delivery copy with fresh timings; arrays are shared.
            assert again.result(timeout=0) == first.result(timeout=0)
        # disk round trip rehydrates the vlasov result bitwise
        rehydrated = ResultStore(capacity=4, directory=tmp_path).get(
            first.result(timeout=0).key
        )
        assert rehydrated is not None
        assert rehydrated.config == vconfig
        assert rehydrated.solver == "vlasov"
        np.testing.assert_array_equal(
            rehydrated.efield, first.result(timeout=0).efield
        )

    def test_vlasov_velocity_grids_bucket_separately(self, vconfig):
        batcher = MicroBatcher(max_batch_size=8, max_wait=10.0)
        other = vconfig.with_updates(extra={"n_v": 32})
        batcher.add(_pending(vconfig, solver="vlasov"))
        batcher.add(_pending(other, solver="vlasov"))
        assert batcher.n_groups == 2

    def test_cold_vlasov_rejected_at_submit(self, vconfig):
        with SimulationService(start=False) as service:
            with pytest.raises(ValueError, match="vth > 0"):
                service.submit(vconfig.with_updates(vth=0.0))

    @pytest.mark.parametrize(
        "extra, match",
        [
            ({"n_v": [64]}, "numeric"),
            ({"n_v": 1}, "too small"),
            ({"v_min": 0.5, "v_max": -0.5}, "empty velocity window"),
        ],
    )
    def test_malformed_velocity_grid_rejected_at_submit(self, vconfig, extra, match):
        """Bad grid knobs fail fast and never leak an in-flight future."""
        bad = vconfig.with_updates(extra=extra)
        with SimulationService(start=False) as service:
            with pytest.raises(ValueError, match=match):
                service.submit(bad)
            assert service.stats["pending"] == 0

    def test_result_key_knows_vlasov_family(self, vconfig):
        assert result_key(vconfig, "vlasov") != result_key(vconfig, "traditional")


class TestRequestParsing:
    def test_parse_request_defaults(self):
        req = parse_request({"api_version": "v1", "config": {"v0": 0.3}}, index=2)
        assert req.config.v0 == 0.3
        assert req.solver == "traditional"
        assert req.id == "request-2"

    def test_envelope_fields_extracted(self):
        req = parse_request({
            "api_version": "v1", "id": "x",
            "config": {"solver": "dl", "seed": 7},
        })
        assert (req.id, req.solver, req.config.seed) == ("x", "dl", 7)

    def test_legacy_bare_config_lines_hard_error(self):
        with pytest.raises(ValueError, match="legacy bare-config"):
            parse_request({"v0": 0.3})
        with pytest.raises(ValueError, match="v1 envelope"):
            parse_request({"id": "x", "solver": "dl", "seed": 7})

    def test_config_without_version_rejected(self):
        with pytest.raises(ValueError, match="api_version"):
            parse_request({"config": {"v0": 0.3}})

    def test_unknown_config_key_rejected(self):
        with pytest.raises(ValueError, match="nsteps"):
            parse_request({"api_version": "v1", "config": {"nsteps": 3}})

    def test_unknown_solver_rejected(self):
        with pytest.raises(ValueError, match="solver"):
            parse_request({"api_version": "v1", "config": {"solver": "quantum"}})

    def test_solver_is_a_config_field(self):
        req = parse_request({
            "api_version": "v1",
            "config": {"solver": "vlasov", "vth": 0.03, "extra": {"n_v": 32}},
        })
        assert req.solver == "vlasov"
        assert req.config.solver == "vlasov"
        assert req.config.extra == {"n_v": 32}

    def test_cold_vlasov_request_fails_the_parse(self):
        with pytest.raises(ValueError, match="vth > 0"):
            parse_request({
                "api_version": "v1",
                "config": {"solver": "vlasov", "vth": 0.0},
            })

    def test_read_requests_skips_blanks_and_comments(self):
        lines = [
            "", "# header",
            '{"api_version": "v1", "config": {"seed": 1}}',
            "   ",
            '{"api_version": "v1", "config": {"seed": 2}}',
        ]
        requests = read_requests(lines)
        assert [r.config.seed for r in requests] == [1, 2]
        # default ids name the input line, not the running request count
        assert [r.id for r in requests] == ["request-3", "request-5"]

    def test_unknown_scenario_fails_the_parse(self):
        with pytest.raises(ValueError, match="line 1.*unknown scenario"):
            read_requests(
                ['{"api_version": "v1", "config": {"scenario": "typo_scenario"}}']
            )

    def test_read_requests_reports_line_numbers(self):
        with pytest.raises(ValueError, match="line 2"):
            read_requests(
                ['{"api_version": "v1", "config": {"seed": 1}}', "{not json"]
            )

    def test_read_requests_reports_legacy_lines_with_line_numbers(self):
        with pytest.raises(ValueError, match="line 1.*legacy bare-config"):
            read_requests(['{"seed": 1}'])
