"""Traditional PIC orchestrator behavior."""

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.engines.observables import Observables, pic_observables
from repro.pic.simulation import ChargeDepositionFieldSolver, PICSimulation, TraditionalPIC


@pytest.fixture
def config() -> SimulationConfig:
    return SimulationConfig(n_cells=32, particles_per_cell=50, n_steps=10, vth=0.01, seed=0)


class TestInitialization:
    def test_initial_field_consistent_with_particles(self, config):
        sim = TraditionalPIC(config)
        assert sim.efield.shape == (config.n_cells,)
        assert sim.time == 0.0
        assert sim.step_index == 0

    def test_initial_field_zero_mean(self, config):
        sim = TraditionalPIC(config)
        assert abs(sim.efield.mean()) < 1e-12

    def test_velocities_rewound_half_step(self, config):
        """After init, stored v differs from loaded v by qm*E*dt/2."""
        from repro.pic.interpolation import gather
        from repro.pic.particles import load_two_stream

        sim = TraditionalPIC(config)
        loaded = load_two_stream(config)
        e_at_p = gather(sim.grid, sim.efield, loaded.x, order=config.interpolation)
        expected = loaded.v - 0.5 * config.qm * e_at_p * config.dt
        np.testing.assert_allclose(sim.particles.v, expected, atol=1e-14)

    def test_v_at_integer_time_equals_loaded_velocities(self, config):
        from repro.pic.particles import load_two_stream

        sim = TraditionalPIC(config)
        loaded = load_two_stream(config)
        np.testing.assert_allclose(sim.v_at_integer_time, loaded.v, atol=1e-14)


class TestStepping:
    def test_step_advances_time(self, config):
        sim = TraditionalPIC(config)
        sim.step()
        assert sim.step_index == 1
        assert sim.time == pytest.approx(config.dt)

    def test_run_records_initial_state_plus_steps(self, config):
        sim = TraditionalPIC(config)
        hist = sim.run(5)
        assert len(hist) == 6
        assert hist["time"][0] == 0.0
        assert hist["time"][-1] == pytest.approx(5 * config.dt)

    def test_run_zero_steps(self, config):
        hist = TraditionalPIC(config).run(0)
        assert len(hist) == 1

    def test_run_negative_steps_rejected(self, config):
        with pytest.raises(ValueError):
            TraditionalPIC(config).run(-1)

    def test_run_uses_config_n_steps_by_default(self, config):
        hist = TraditionalPIC(config).run()
        assert len(hist) == config.n_steps + 1

    def test_callback_fires_each_step(self, config):
        sim = TraditionalPIC(config)
        calls = []
        sim.run(4, callback=lambda s: calls.append(s.step_index))
        assert calls == [1, 2, 3, 4]

    def test_positions_stay_in_box(self, config):
        sim = TraditionalPIC(config)
        sim.run(10)
        assert np.all(sim.particles.x >= 0)
        assert np.all(sim.particles.x < config.box_length)

    def test_custom_history_object_used(self, config):
        sim = TraditionalPIC(config)
        hist = Observables(pic_observables(record_fields=True), squeeze=True)
        out = sim.run(3, history=hist)
        assert out is hist
        assert hist.as_arrays()["fields"].shape == (4, config.n_cells)


class TestConservation:
    def test_momentum_conserved_to_roundoff_with_cic(self):
        cfg = SimulationConfig(
            n_cells=32, particles_per_cell=100, n_steps=20, vth=0.01,
            interpolation="cic", seed=1,
        )
        hist = TraditionalPIC(cfg).run(20)
        mom = np.asarray(hist["momentum"])
        assert np.max(np.abs(mom - mom[0])) < 1e-12

    def test_energy_bounded_during_instability(self):
        cfg = SimulationConfig(n_cells=32, particles_per_cell=100, vth=0.01, seed=2)
        hist = TraditionalPIC(cfg).run(60)
        assert hist.energy_variation() < 0.05

    def test_charge_density_zero_mean_every_step(self, config):
        sim = TraditionalPIC(config)
        for _ in range(5):
            sim.step()
            assert abs(sim.charge_density.mean()) < 1e-12

    def test_initial_kinetic_energy_matches_theory(self):
        cfg = SimulationConfig(n_cells=64, particles_per_cell=300, v0=0.2, vth=0.025, seed=3)
        hist = TraditionalPIC(cfg).run(0)
        expected = 0.5 * cfg.box_length * (cfg.v0**2 + cfg.vth**2)
        assert hist["kinetic"][0] == pytest.approx(expected, rel=0.02)


class TestAccessors:
    def test_charge_density_and_potential_exposed(self, config):
        sim = TraditionalPIC(config)
        assert sim.charge_density.shape == (config.n_cells,)
        assert sim.potential.shape == (config.n_cells,)
        assert abs(sim.potential.mean()) < 1e-10


class TestPluggableFieldSolver:
    def test_custom_solver_drives_cycle(self, config):
        class ZeroField:
            def field(self, x, v):
                return np.zeros(config.n_cells)

        sim = PICSimulation(config, ZeroField())
        v_before = sim.particles.v.copy()
        sim.step()
        # With E = 0 velocities never change; positions free-stream.
        np.testing.assert_array_equal(sim.particles.v, v_before)

    def test_charge_deposition_solver_matches_manual_pipeline(self, config):
        from repro.pic.grid import Grid1D
        from repro.pic.interpolation import charge_density
        from repro.pic.poisson import PoissonSolver

        grid = Grid1D(config.n_cells, config.box_length)
        solver = ChargeDepositionFieldSolver(
            grid, particle_charge=config.particle_charge, interpolation="cic",
            poisson_method="spectral", gradient="central",
        )
        rng = np.random.default_rng(0)
        x = rng.uniform(0, config.box_length, 500)
        e = solver.field(x, np.zeros_like(x))
        rho = charge_density(grid, x, config.particle_charge, order="cic")
        _, e_manual = PoissonSolver(grid).solve(rho)
        np.testing.assert_allclose(e, e_manual, atol=1e-14)
        np.testing.assert_allclose(solver.last_rho, rho, atol=1e-14)


class TestSolverVariants:
    @pytest.mark.parametrize("poisson", ["spectral", "fd", "direct"])
    def test_all_poisson_solvers_run_stably(self, poisson):
        cfg = SimulationConfig(
            n_cells=32, particles_per_cell=60, n_steps=10, vth=0.01,
            poisson_solver=poisson, seed=4,
        )
        hist = TraditionalPIC(cfg).run(10)
        assert np.all(np.isfinite(hist.as_arrays()["total"]))

    @pytest.mark.parametrize("interp", ["ngp", "cic", "tsc"])
    def test_all_interpolations_run_stably(self, interp):
        cfg = SimulationConfig(
            n_cells=32, particles_per_cell=60, n_steps=10, vth=0.01,
            interpolation=interp, seed=5,
        )
        hist = TraditionalPIC(cfg).run(10)
        assert np.all(np.isfinite(hist.as_arrays()["total"]))

    def test_spectral_gradient_variant(self):
        cfg = SimulationConfig(
            n_cells=32, particles_per_cell=60, n_steps=5, vth=0.01,
            gradient="spectral", seed=6,
        )
        hist = TraditionalPIC(cfg).run(5)
        assert np.all(np.isfinite(hist.as_arrays()["total"]))
