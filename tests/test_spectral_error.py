"""Spectral error analysis (the paper's proposed follow-up study)."""

import numpy as np
import pytest

from repro.theory.spectral import ErrorSpectrum, field_error_spectrum


def _x(n=64):
    return 2 * np.pi * np.arange(n) / n


class TestFieldErrorSpectrum:
    def test_perfect_prediction_zero_error(self):
        truth = np.sin(_x())[None, :]
        spec = field_error_spectrum(truth, truth)
        np.testing.assert_allclose(spec.error_amplitude, 0.0, atol=1e-14)
        assert spec.signal_amplitude[1] == pytest.approx(1.0, rel=1e-10)

    def test_error_isolated_in_injected_mode(self):
        x = _x()
        truth = np.sin(x)
        pred = truth + 0.05 * np.sin(3 * x)
        spec = field_error_spectrum(pred[None, :], truth[None, :])
        assert spec.dominant_error_mode == 3
        assert spec.error_amplitude[3] == pytest.approx(0.05, rel=1e-10)
        assert spec.error_amplitude[1] == pytest.approx(0.0, abs=1e-12)

    def test_rms_over_samples(self):
        x = _x()
        truth = np.stack([np.sin(x), np.sin(x)])
        pred = truth.copy()
        pred[0] += 0.1 * np.cos(2 * x)  # error only in sample 0
        spec = field_error_spectrum(pred, truth)
        assert spec.error_amplitude[2] == pytest.approx(0.1 / np.sqrt(2), rel=1e-10)

    def test_relative_spectrum(self):
        x = _x()
        truth = 0.2 * np.sin(x)
        pred = truth + 0.02 * np.sin(x)
        spec = field_error_spectrum(pred[None, :], truth[None, :])
        assert spec.relative[1] == pytest.approx(0.1, rel=1e-9)

    def test_low_k_fraction(self):
        x = _x()
        truth = np.zeros_like(x)
        pred = 0.1 * np.sin(2 * x) + 0.1 * np.sin(20 * x)
        spec = field_error_spectrum(pred[None, :], truth[None, :])
        assert spec.low_k_fraction(cutoff=4) == pytest.approx(0.5, rel=1e-9)

    def test_low_k_fraction_all_low(self):
        x = _x()
        pred = 0.1 * np.sin(x)
        spec = field_error_spectrum(pred[None, :], np.zeros((1, 64)))
        assert spec.low_k_fraction(cutoff=4) == pytest.approx(1.0)

    def test_low_k_fraction_zero_error(self):
        truth = np.sin(_x())[None, :]
        spec = field_error_spectrum(truth, truth)
        assert spec.low_k_fraction() == 0.0

    def test_cutoff_validation(self):
        truth = np.sin(_x())[None, :]
        spec = field_error_spectrum(truth, truth)
        with pytest.raises(ValueError):
            spec.low_k_fraction(cutoff=0)
        with pytest.raises(ValueError):
            spec.low_k_fraction(cutoff=33)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            field_error_spectrum(np.zeros((2, 8)), np.zeros((3, 8)))
        with pytest.raises(ValueError):
            field_error_spectrum(np.zeros((1, 1)), np.zeros((1, 1)))

    def test_single_1d_pair_accepted(self):
        x = _x(16)
        spec = field_error_spectrum(np.sin(x), np.sin(x))
        assert spec.modes.shape == (9,)


class TestSolverErrorSpectrum:
    def test_on_trained_tiny_solver(self, tiny_trained_solver, tiny_solver_config):
        """The tiny solver's error spectrum is finite and its largest
        *relative* failure sits away from the physically dominant mode 1
        (which carries the training signal)."""
        from repro.datagen.campaign import harvest_simulation
        from repro.theory.spectral import solver_error_spectrum

        data = harvest_simulation(
            tiny_solver_config, tiny_trained_solver.ps_grid, binning="ngp"
        )
        spec = solver_error_spectrum(tiny_trained_solver, data)
        assert np.all(np.isfinite(spec.error_amplitude))
        # Mode 1 carries most of the signal energy in a two-stream run.
        assert spec.signal_amplitude[1] == spec.signal_amplitude[1:].max()
