"""Concurrent writers on one store directory: atomicity and cleanliness."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.service import ResultStore, SimulationService, result_key


@pytest.fixture
def produced_result(tiny_config):
    with SimulationService(start=False) as service:
        future = service.submit(tiny_config)
        service.flush()
        return future.result()


class TestConcurrentSameKeyWriters:
    def test_readers_never_observe_a_torn_archive(
        self, produced_result, tmp_path
    ):
        """N threads hammer put() on one key while a reader polls the file.

        Every successful read must deserialize to the complete result —
        the atomic temp-file + rename protocol guarantees the on-disk
        ``<key>.npz`` is always some writer's *finished* archive.
        """
        store_dir = tmp_path / "store"
        writer_store = ResultStore(capacity=0, directory=store_dir)
        reader_store = ResultStore(capacity=0, directory=store_dir)
        stop = threading.Event()
        errors: list[BaseException] = []

        def write_loop() -> None:
            try:
                while not stop.is_set():
                    writer_store.put(produced_result)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        writers = [threading.Thread(target=write_loop) for _ in range(4)]
        for thread in writers:
            thread.start()
        try:
            reads = 0
            while reads < 50:
                loaded = reader_store.get(produced_result.key)
                if loaded is None:
                    continue
                reads += 1
                assert loaded.key == produced_result.key
                for name, values in produced_result.series.items():
                    assert np.array_equal(loaded.series[name], values), name
                assert np.array_equal(loaded.efield, produced_result.efield)
        finally:
            stop.set()
            for thread in writers:
                thread.join(timeout=30)
        assert not errors
        # No writer leaked a temp file: after the dust settles the
        # directory holds exactly the final archives.
        leftovers = [p.name for p in store_dir.iterdir() if p.name.startswith(".tmp-")]
        assert leftovers == []
        assert (store_dir / f"{produced_result.key}.npz").exists()

    def test_same_process_threads_get_distinct_temp_names(
        self, produced_result, tmp_path, monkeypatch
    ):
        """Two threads in one pid must not share a temp path (the name
        embeds a per-process counter, not just the pid)."""
        from repro.service import store as store_module

        store = ResultStore(capacity=0, directory=tmp_path)
        seen: list[str] = []
        original = store_module.os.replace

        def spying_replace(src, dst):
            seen.append(str(src))
            return original(src, dst)

        monkeypatch.setattr(store_module.os, "replace", spying_replace)
        store.put(produced_result)
        store.put(produced_result)
        assert len(seen) == 2
        assert seen[0] != seen[1]

    def test_failed_write_leaves_no_temp_file(self, produced_result, tmp_path, monkeypatch):
        from repro.service import store as store_module

        store = ResultStore(capacity=0, directory=tmp_path)

        def boom(path, payload):
            # Simulate a writer dying after the temp file exists.
            open(path, "wb").close()
            raise OSError("disk full")

        monkeypatch.setattr(store_module, "save_npz_dict", boom)
        with pytest.raises(OSError, match="disk full"):
            store.put(produced_result)
        assert [p.name for p in tmp_path.iterdir()] == []


class TestKeyedAddressing:
    def test_result_is_stored_under_its_request_key(self, produced_result, tmp_path):
        store = ResultStore(directory=tmp_path)
        store.put(produced_result)
        expected = result_key(produced_result.config, solver=produced_result.solver)
        assert expected == produced_result.key
        assert (tmp_path / f"{expected}.npz").exists()
