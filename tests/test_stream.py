"""Streaming campaign pipeline: parity, resume, repair, memory bound."""

import json

import numpy as np
import pytest

from repro.config import SimulationConfig
from repro.datagen import (
    CampaignConfig,
    CampaignStream,
    FieldDataset,
    campaign_hash,
    run_campaign,
)
from repro.obs.metrics import campaign_snapshot, reset_metrics
from repro.phasespace.binning import PhaseSpaceGrid


def tiny_campaign(**overrides) -> CampaignConfig:
    base = SimulationConfig(n_cells=32, particles_per_cell=20, n_steps=6, dt=0.2)
    grid = PhaseSpaceGrid(n_x=16, n_v=8, box_length=base.box_length)
    kwargs = dict(
        base_config=base,
        v0_values=(0.18, 0.2),
        vth_values=(0.02,),
        experiments_per_combo=2,
        ps_grid=grid,
    )
    kwargs.update(overrides)
    return CampaignConfig(**kwargs)


@pytest.fixture
def campaign():
    return tiny_campaign()


@pytest.fixture
def reference(campaign):
    """The materializing harvest the stream must match bitwise."""
    return run_campaign(campaign)


def assert_bitwise_equal(a: FieldDataset, b: FieldDataset) -> None:
    assert a.inputs.dtype == b.inputs.dtype
    assert np.array_equal(a.inputs, b.inputs)
    assert np.array_equal(a.targets, b.targets)
    assert np.array_equal(a.params, b.params)


class TestStreamingParity:
    def test_bitwise_identical_to_materializing_harvest(
        self, campaign, reference, tmp_path
    ):
        stream = CampaignStream(campaign, tmp_path / "c", shard_size=3)
        assert_bitwise_equal(stream.dataset(), reference)
        assert stream.stats["shards_executed"] == 2
        assert stream.stats["runs_executed"] == campaign.n_simulations

    def test_parity_independent_of_shard_size(self, campaign, reference, tmp_path):
        for shard_size in (1, 2, 4):
            stream = CampaignStream(
                campaign, tmp_path / f"s{shard_size}", shard_size=shard_size
            )
            assert_bitwise_equal(stream.dataset(), reference)

    def test_shards_yielded_in_plan_order_with_durable_files(
        self, campaign, tmp_path
    ):
        stream = CampaignStream(campaign, tmp_path / "c", shard_size=3)
        shards = list(stream)
        assert [s.index for s in shards] == [0, 1]
        assert [s.n_runs for s in shards] == [3, 1]
        for shard in shards:
            assert shard.path.exists()
            assert shard.status == "executed"
            assert_bitwise_equal(shard.load(), FieldDataset.load(shard.path))

    def test_manifest_records_every_shard(self, campaign, tmp_path):
        stream = CampaignStream(campaign, tmp_path / "c", shard_size=3)
        stream.run()
        manifest = json.loads((tmp_path / "c" / "manifest.json").read_text())
        assert manifest["campaign_hash"] == stream.campaign_hash
        assert manifest["n_shards"] == 2
        assert set(manifest["shards"]) == {"0", "1"}
        for entry in manifest["shards"].values():
            assert set(entry) == {"file", "sha256", "n_runs", "n_samples"}


class TestResume:
    def test_completed_campaign_resumes_without_executing(
        self, campaign, reference, tmp_path
    ):
        CampaignStream(campaign, tmp_path / "c", shard_size=3).run()
        stream = CampaignStream(campaign, tmp_path / "c", shard_size=3)
        data = stream.dataset()
        assert stream.stats["runs_executed"] == 0
        assert stream.stats["shards_verified"] == 2
        assert stream.stats["runs_skipped"] == campaign.n_simulations
        assert_bitwise_equal(data, reference)

    def test_truncated_shard_is_repaired_bitwise(
        self, campaign, reference, tmp_path
    ):
        CampaignStream(campaign, tmp_path / "c", shard_size=2).run()
        shards = sorted((tmp_path / "c").glob("shard-*.npz"))
        with open(shards[-1], "r+b") as fh:  # simulate a mid-write crash
            fh.truncate(64)
        stream = CampaignStream(campaign, tmp_path / "c", shard_size=2)
        data = stream.dataset()
        # Only the damaged shard re-executed; the intact ones verified.
        assert stream.stats["shards_repaired"] == 1
        assert stream.stats["shards_verified"] == 1
        assert stream.stats["runs_executed"] == 2
        assert stream.stats["runs_skipped"] == 2
        assert_bitwise_equal(data, reference)

    def test_deleted_shard_is_re_requested(self, campaign, reference, tmp_path):
        CampaignStream(campaign, tmp_path / "c", shard_size=2).run()
        sorted((tmp_path / "c").glob("shard-*.npz"))[0].unlink()
        stream = CampaignStream(campaign, tmp_path / "c", shard_size=2)
        assert_bitwise_equal(stream.dataset(), reference)
        assert stream.stats["shards_repaired"] == 1

    def test_status_reports_partial_progress(self, campaign, tmp_path):
        stream = CampaignStream(campaign, tmp_path / "c", shard_size=2)
        status = stream.status()
        assert status["shards_intact"] == 0 and not status["complete"]
        stream.run()
        status = stream.status()
        assert status["shards_intact"] == status["n_shards"] == 2
        assert status["complete"]

    def test_different_campaign_rejected(self, campaign, tmp_path):
        CampaignStream(campaign, tmp_path / "c", shard_size=2).run()
        other = tiny_campaign(v0_values=(0.19, 0.21))
        stream = CampaignStream(other, tmp_path / "c", shard_size=2)
        with pytest.raises(ValueError, match="different campaign"):
            stream.run()

    def test_shard_size_is_part_of_campaign_identity(self, campaign, tmp_path):
        assert campaign_hash(campaign, 2) != campaign_hash(campaign, 3)
        CampaignStream(campaign, tmp_path / "c", shard_size=2).run()
        with pytest.raises(ValueError, match="different campaign"):
            CampaignStream(campaign, tmp_path / "c", shard_size=3).run()

    def test_resume_false_overwrites(self, campaign, reference, tmp_path):
        CampaignStream(campaign, tmp_path / "c", shard_size=2).run()
        stream = CampaignStream(
            campaign, tmp_path / "c", shard_size=2, resume=False
        )
        data = stream.dataset()
        assert stream.stats["shards_executed"] == 2
        assert stream.stats["shards_verified"] == 0
        assert_bitwise_equal(data, reference)


class TestMemoryBound:
    def test_inflight_runs_bounded_by_shard_size_times_prefetch(
        self, campaign, tmp_path
    ):
        stream = CampaignStream(
            campaign, tmp_path / "c", shard_size=1, prefetch_depth=2
        )
        stream.run()
        assert stream.stats["max_inflight_runs"] <= 1 * 2
        assert stream.stats["shards_executed"] == campaign.n_simulations

    def test_validates_bounds(self, campaign, tmp_path):
        with pytest.raises(ValueError, match="shard_size"):
            CampaignStream(campaign, tmp_path / "c", shard_size=0)
        with pytest.raises(ValueError, match="prefetch_depth"):
            CampaignStream(campaign, tmp_path / "c", prefetch_depth=0)


class TestMetrics:
    def test_shard_statuses_reach_the_global_counters(self, campaign, tmp_path):
        reset_metrics()
        CampaignStream(campaign, tmp_path / "c", shard_size=2).run()
        shards = sorted((tmp_path / "c").glob("shard-*.npz"))
        with open(shards[0], "r+b") as fh:
            fh.truncate(64)
        CampaignStream(campaign, tmp_path / "c", shard_size=2).run()
        snapshot = campaign_snapshot()
        assert snapshot["shards_by_status"] == {
            "executed": 2, "repaired": 1, "verified": 1,
        }
        assert snapshot["shards_total"] == 4


class TestDatasetDtype:
    def test_float32_pairs_preserved(self):
        grid = PhaseSpaceGrid(n_x=4, n_v=3, box_length=1.0)
        data = FieldDataset(
            inputs=np.zeros((2, 3, 4), dtype=np.float32),
            targets=np.zeros((2, 8), dtype=np.float32),
            params=np.zeros((2, 4), dtype=np.float32),
            ps_grid=grid,
        )
        assert data.inputs.dtype == np.float32
        assert data.targets.dtype == np.float32
        assert data.params.dtype == np.float64  # provenance stays float64

    def test_float64_and_integer_inputs_unchanged(self):
        grid = PhaseSpaceGrid(n_x=4, n_v=3, box_length=1.0)
        counts = np.arange(24, dtype=np.int64).reshape(2, 3, 4)
        data = FieldDataset(
            inputs=counts,
            targets=np.ones((2, 8)),
            params=np.zeros((2, 4)),
            ps_grid=grid,
        )
        assert data.inputs.dtype == np.float64
        assert np.array_equal(data.inputs, counts.astype(np.float64))
        assert data.targets.dtype == np.float64

    def test_float32_survives_save_load(self, tmp_path):
        grid = PhaseSpaceGrid(n_x=4, n_v=3, box_length=1.0)
        data = FieldDataset(
            inputs=np.random.default_rng(0).random((2, 3, 4)).astype(np.float32),
            targets=np.random.default_rng(1).random((2, 8)).astype(np.float32),
            params=np.zeros((2, 4)),
            ps_grid=grid,
        )
        loaded = FieldDataset.load(data.save(tmp_path / "d.npz"))
        assert loaded.inputs.dtype == np.float32
        assert np.array_equal(loaded.inputs, data.inputs)
        assert np.array_equal(loaded.targets, data.targets)
