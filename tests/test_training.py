"""Trainer: convergence, validation tracking, early stopping."""

import numpy as np
import pytest

from repro.nn.layers import Dense, ReLU
from repro.nn.losses import MSELoss
from repro.nn.network import Sequential
from repro.nn.optimizers import Adam
from repro.nn.training import Trainer, TrainingHistory


def _regression_problem(n=200, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 4))
    w = rng.normal(size=(4, 2))
    return x, x @ w


def _model(seed=0):
    return Sequential([Dense(4, 24, rng=seed), ReLU(), Dense(24, 2, rng=seed + 1)])


class TestFit:
    def test_loss_decreases(self):
        x, y = _regression_problem()
        trainer = Trainer(_model(), MSELoss(), Adam(lr=3e-3))
        history = trainer.fit(x, y, epochs=25, batch_size=32, rng=1)
        assert history.loss[-1] < 0.1 * history.loss[0]

    def test_history_lengths(self):
        x, y = _regression_problem()
        trainer = Trainer(_model())
        history = trainer.fit(x, y, epochs=4, batch_size=64, rng=0,
                              validation=(x[:20], y[:20]))
        assert history.n_epochs == 4
        assert len(history.val_loss) == 4
        assert len(history.val_mae) == 4
        assert len(history.epoch_seconds) == 4

    def test_no_validation_leaves_val_series_empty(self):
        x, y = _regression_problem(60)
        history = Trainer(_model()).fit(x, y, epochs=2, rng=0)
        assert history.val_loss == []

    def test_reproducible_with_same_seed(self):
        x, y = _regression_problem()
        h1 = Trainer(_model(seed=5), MSELoss(), Adam(lr=1e-3)).fit(
            x, y, epochs=3, batch_size=32, rng=42
        )
        h2 = Trainer(_model(seed=5), MSELoss(), Adam(lr=1e-3)).fit(
            x, y, epochs=3, batch_size=32, rng=42
        )
        np.testing.assert_allclose(h1.loss, h2.loss, rtol=1e-12)

    def test_zero_epochs(self):
        x, y = _regression_problem(30)
        history = Trainer(_model()).fit(x, y, epochs=0, rng=0)
        assert history.n_epochs == 0

    def test_negative_epochs_rejected(self):
        x, y = _regression_problem(30)
        with pytest.raises(ValueError):
            Trainer(_model()).fit(x, y, epochs=-1)

    def test_train_step_returns_scalar_loss(self):
        x, y = _regression_problem(30)
        trainer = Trainer(_model())
        value = trainer.train_step(x[:8], y[:8])
        assert np.isscalar(value) and value > 0

    def test_verbose_prints(self, capsys):
        x, y = _regression_problem(40)
        Trainer(_model()).fit(x, y, epochs=1, rng=0, verbose=True)
        assert "epoch" in capsys.readouterr().out


class TestEarlyStopping:
    def test_stops_when_validation_stalls(self):
        x, y = _regression_problem(100)
        # A frozen validation target the model can't improve on forever:
        # use pure noise as validation so val loss plateaus quickly.
        rng = np.random.default_rng(9)
        xv = rng.normal(size=(30, 4))
        yv = rng.normal(size=(30, 2)) * 100.0
        trainer = Trainer(_model(), MSELoss(), Adam(lr=1e-3))
        history = trainer.fit(
            x, y, epochs=200, batch_size=32, rng=0, validation=(xv, yv), patience=3
        )
        assert history.n_epochs < 200

    def test_patience_requires_validation(self):
        x, y = _regression_problem(30)
        with pytest.raises(ValueError):
            Trainer(_model()).fit(x, y, epochs=5, patience=2)

    def test_best_epoch(self):
        history = TrainingHistory(loss=[1, 1, 1], val_loss=[3.0, 1.0, 2.0])
        assert history.best_epoch() == 1

    def test_best_epoch_without_validation(self):
        with pytest.raises(ValueError):
            TrainingHistory(loss=[1.0]).best_epoch()


class TestEvaluate:
    def test_keys_and_consistency(self):
        x, y = _regression_problem(60)
        trainer = Trainer(_model())
        out = trainer.evaluate(x, y)
        assert set(out) == {"loss", "mae", "max_error"}
        assert out["max_error"] >= out["mae"] > 0

    def test_perfect_model_evaluates_to_zero(self):
        model = Sequential([Dense(2, 2, rng=0)])
        model.layers[0].params["W"][...] = np.eye(2)
        model.layers[0].params["b"][...] = 0.0
        x = np.random.default_rng(0).normal(size=(10, 2))
        out = Trainer(model).evaluate(x, x)
        assert out["loss"] == pytest.approx(0.0, abs=1e-20)
        assert out["mae"] == pytest.approx(0.0, abs=1e-12)
