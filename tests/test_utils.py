"""Utility helpers: RNG plumbing, npz I/O, timer."""

import numpy as np
import pytest

from repro.utils.io import ensure_dir, load_npz_dict, save_npz_dict
from repro.utils.rng import as_generator, spawn_generators, spawn_seeds
from repro.utils.timer import Timer


class TestRng:
    def test_int_seed(self):
        a = as_generator(5).random(3)
        b = as_generator(5).random(3)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_none_gives_fresh_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_spawn_seeds_deterministic(self):
        assert spawn_seeds(7, 4) == spawn_seeds(7, 4)

    def test_spawn_seeds_distinct(self):
        seeds = spawn_seeds(7, 100)
        assert len(set(seeds)) == 100

    def test_spawn_generators_independent_streams(self):
        g1, g2 = spawn_generators(3, 2)
        assert not np.array_equal(g1.random(10), g2.random(10))

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)
        with pytest.raises(ValueError):
            spawn_generators(0, -2)


class TestNpzDict:
    def test_roundtrip_arrays_and_meta(self, tmp_path):
        data = {
            "array": np.arange(6.0).reshape(2, 3),
            "n": 42,
            "name": "two-stream",
            "values": [1.0, 2.0],
        }
        path = save_npz_dict(tmp_path / "out.npz", data)
        loaded = load_npz_dict(path)
        np.testing.assert_array_equal(loaded["array"], data["array"])
        assert loaded["n"] == 42
        assert loaded["name"] == "two-stream"
        assert loaded["values"] == [1.0, 2.0]

    def test_reserved_key_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_npz_dict(tmp_path / "x.npz", {"__meta__": 1})

    def test_creates_parent_dirs(self, tmp_path):
        path = save_npz_dict(tmp_path / "a" / "b" / "c.npz", {"x": np.zeros(1)})
        assert path.exists()


class TestEnsureDir:
    def test_creates_and_returns(self, tmp_path):
        p = ensure_dir(tmp_path / "x" / "y")
        assert p.is_dir()

    def test_idempotent(self, tmp_path):
        ensure_dir(tmp_path / "z")
        ensure_dir(tmp_path / "z")


class TestTimer:
    def test_measures_nonnegative_time(self):
        with Timer() as t:
            sum(range(100))
        assert t.elapsed >= 0.0
