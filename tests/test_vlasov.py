"""Semi-Lagrangian Vlasov-Poisson solver."""

import numpy as np
import pytest

from repro.phasespace.binning import PhaseSpaceGrid
from repro.vlasov.harvest import expected_counts, harvest_vlasov_dataset
from repro.vlasov.solver import (
    VlasovConfig,
    VlasovSimulation,
    two_stream_distribution,
    _shift_clamped_columns,
    _shift_periodic_rows,
)


def _small_config(**overrides) -> VlasovConfig:
    defaults = dict(n_x=32, n_v=64, dt=0.1, n_steps=20, v0=0.2, vth=0.03,
                    perturbation=1e-3)
    defaults.update(overrides)
    return VlasovConfig(**defaults)


class TestConfig:
    def test_cold_beams_rejected(self):
        with pytest.raises(ValueError, match="vth > 0"):
            VlasovConfig(vth=0.0)

    def test_grid_spacings(self):
        cfg = _small_config()
        assert cfg.dx == pytest.approx(cfg.box_length / 32)
        assert cfg.dv == pytest.approx(1.0 / 64)

    @pytest.mark.parametrize(
        "kwargs", [{"n_x": 1}, {"v_min": 1.0, "v_max": 0.0}, {"dt": 0.0}]
    )
    def test_invalid_values(self, kwargs):
        with pytest.raises(ValueError):
            _small_config(**kwargs)


class TestInitialCondition:
    def test_mean_density_is_one(self):
        cfg = _small_config()
        f = two_stream_distribution(cfg)
        density = f.sum(axis=0) * cfg.dv
        assert density.mean() == pytest.approx(1.0, rel=1e-12)

    def test_two_beams_centered_at_plus_minus_v0(self):
        cfg = _small_config()
        f = two_stream_distribution(cfg)
        fv = f.sum(axis=1)
        v = cfg.v_centers()
        peaks = v[np.argsort(fv)[-2:]]
        assert sorted(np.round(np.abs(peaks), 2)) == [0.2, 0.2]

    def test_perturbation_modulates_density(self):
        cfg = _small_config(perturbation=0.05)
        f = two_stream_distribution(cfg)
        density = f.sum(axis=0) * cfg.dv
        assert density.max() - density.min() == pytest.approx(0.1, rel=0.01)

    def test_distribution_nonnegative(self):
        f = two_stream_distribution(_small_config())
        assert np.all(f >= 0)


class TestShifts:
    def test_integer_row_shift_is_exact_roll(self):
        rng = np.random.default_rng(0)
        f = rng.random((4, 8))
        shifted = _shift_periodic_rows(f, np.array([1.0, 2.0, 0.0, -1.0]))
        np.testing.assert_allclose(shifted[0], np.roll(f[0], 1), atol=1e-14)
        np.testing.assert_allclose(shifted[1], np.roll(f[1], 2), atol=1e-14)
        np.testing.assert_allclose(shifted[2], f[2], atol=1e-14)
        np.testing.assert_allclose(shifted[3], np.roll(f[3], -1), atol=1e-14)

    def test_fractional_row_shift_interpolates(self):
        f = np.zeros((1, 4))
        f[0, 1] = 1.0
        shifted = _shift_periodic_rows(f, np.array([0.5]))
        np.testing.assert_allclose(shifted[0], [0.0, 0.5, 0.5, 0.0])

    def test_row_shift_conserves_mass(self):
        rng = np.random.default_rng(1)
        f = rng.random((6, 12))
        shifted = _shift_periodic_rows(f, rng.uniform(-3, 3, 6))
        assert shifted.sum() == pytest.approx(f.sum(), rel=1e-12)

    def test_column_shift_zero_inflow(self):
        f = np.ones((4, 2))
        shifted = _shift_clamped_columns(f, np.array([1.0, -1.0]))
        # Shift down by one: top row receives zero inflow.
        np.testing.assert_allclose(shifted[:, 0], [0.0, 1.0, 1.0, 1.0])
        np.testing.assert_allclose(shifted[:, 1], [1.0, 1.0, 1.0, 0.0])

    def test_column_shift_integer_exact(self):
        rng = np.random.default_rng(2)
        f = rng.random((6, 3))
        shifted = _shift_clamped_columns(f, np.array([2.0, 0.0, -1.0]))
        np.testing.assert_allclose(shifted[2:, 0], f[:-2, 0], atol=1e-14)
        np.testing.assert_allclose(shifted[:, 1], f[:, 1], atol=1e-14)
        np.testing.assert_allclose(shifted[:-1, 2], f[1:, 2], atol=1e-14)


class TestConservation:
    def test_mass_conserved(self):
        cfg = _small_config()
        sim = VlasovSimulation(cfg)
        m0 = sim.mass()
        sim.run(20)
        assert sim.mass() == pytest.approx(m0, rel=1e-10)

    def test_energy_approximately_conserved(self):
        cfg = _small_config(n_steps=50)
        sim = VlasovSimulation(cfg)
        h = sim.run(50)
        total = h["total"]
        assert np.max(np.abs(total - total[0])) / total[0] < 0.05

    def test_momentum_near_zero(self):
        sim = VlasovSimulation(_small_config())
        h = sim.run(10)
        assert np.all(np.abs(h["momentum"]) < 1e-6)

    def test_distribution_stays_nonnegative_mostly(self):
        """Linear interpolation is positivity-preserving."""
        sim = VlasovSimulation(_small_config())
        sim.run(20)
        assert sim.f.min() >= -1e-12


class TestPhysics:
    def test_two_stream_growth_rate(self):
        """The Vlasov run reproduces the analytic growth rate too."""
        from repro.theory.dispersion import growth_rate_cold
        from repro.theory.growth import fit_growth_rate

        cfg = VlasovConfig(n_x=64, n_v=128, dt=0.1, v0=0.2, vth=0.025,
                           perturbation=1e-3)
        sim = VlasovSimulation(cfg)
        h = sim.run(200)
        fit = fit_growth_rate(h["time"], h["mode1"])
        gamma = growth_rate_cold(2 * np.pi / cfg.box_length, cfg.v0)
        assert fit.relative_error(gamma) < 0.25
        assert fit.r_squared > 0.95

    def test_free_streaming_without_charge_coupling(self):
        """With the perturbation off, the state stays near equilibrium."""
        cfg = _small_config(perturbation=0.0, n_steps=30)
        sim = VlasovSimulation(cfg)
        h = sim.run(30)
        assert np.all(h["mode1"] < 1e-10)


class TestHarvest:
    def test_expected_counts_total(self):
        cfg = _small_config()
        grid = PhaseSpaceGrid(n_x=32, n_v=64, box_length=cfg.box_length,
                              v_min=cfg.v_min, v_max=cfg.v_max)
        f = two_stream_distribution(cfg)
        counts = expected_counts(f, cfg, grid, n_particles=64000)
        assert counts.sum() == pytest.approx(64000, rel=1e-9)

    def test_coarsening_preserves_mass(self):
        cfg = _small_config(n_x=32, n_v=64)
        grid = PhaseSpaceGrid(n_x=16, n_v=16, box_length=cfg.box_length,
                              v_min=cfg.v_min, v_max=cfg.v_max)
        f = two_stream_distribution(cfg)
        counts = expected_counts(f, cfg, grid, n_particles=1000)
        assert counts.shape == grid.shape
        assert counts.sum() == pytest.approx(1000, rel=1e-9)

    def test_incompatible_grids_rejected(self):
        cfg = _small_config(n_x=32, n_v=64)
        grid = PhaseSpaceGrid(n_x=24, n_v=16, box_length=cfg.box_length,
                              v_min=cfg.v_min, v_max=cfg.v_max)
        with pytest.raises(ValueError, match="tile"):
            expected_counts(two_stream_distribution(cfg), cfg, grid, 100)

    def test_mismatched_window_rejected(self):
        cfg = _small_config()
        grid = PhaseSpaceGrid(n_x=32, n_v=64, box_length=cfg.box_length,
                              v_min=-1.0, v_max=1.0)
        with pytest.raises(ValueError, match="windows differ"):
            expected_counts(two_stream_distribution(cfg), cfg, grid, 100)

    def test_harvest_dataset_shapes_and_stride(self):
        cfg = _small_config(n_steps=10)
        grid = PhaseSpaceGrid(n_x=32, n_v=64, box_length=cfg.box_length,
                              v_min=cfg.v_min, v_max=cfg.v_max)
        data = harvest_vlasov_dataset(cfg, grid, n_particles=5000, stride=2)
        # Initial state + steps 2, 4, 6, 8, 10.
        assert len(data) == 6
        assert data.inputs.shape == (6, 64, 32)
        assert data.params[0, 2] == -1.0  # Vlasov sentinel seed

    def test_harvested_pairs_train_the_same_pipeline(self):
        """Vlasov data slots into the standard training stack."""
        from repro.models.architectures import build_mlp
        from repro.nn.losses import MSELoss
        from repro.nn.optimizers import Adam
        from repro.nn.training import Trainer
        from repro.phasespace.normalization import MinMaxNormalizer

        cfg = _small_config(n_steps=30, perturbation=0.01)
        grid = PhaseSpaceGrid(n_x=32, n_v=64, box_length=cfg.box_length,
                              v_min=cfg.v_min, v_max=cfg.v_max)
        data = harvest_vlasov_dataset(cfg, grid, n_particles=10000)
        norm = MinMaxNormalizer().fit(data.inputs)
        model = build_mlp(input_size=grid.size, output_size=32, hidden_size=16, rng=0)
        trainer = Trainer(model, MSELoss(), Adam(lr=1e-3))
        history = trainer.fit(norm.transform(data.flat_inputs()), data.targets,
                              epochs=5, batch_size=8, rng=0)
        assert history.loss[-1] < history.loss[0]


class TestEnsembleHarvest:
    def test_batched_harvest_matches_solo_harvests(self):
        """Registry-routed batched harvest == per-config solo harvests."""
        from repro.config import SimulationConfig
        from repro.pic.scenarios import load_distribution
        from repro.vlasov import vlasov_config_from
        from repro.vlasov.harvest import harvest_vlasov_ensemble

        grid = PhaseSpaceGrid(n_x=32, n_v=64, box_length=VlasovConfig().box_length,
                              v_min=-0.5, v_max=0.5)
        configs = [
            SimulationConfig(n_cells=32, n_steps=6, vth=0.03, v0=0.2, solver="vlasov",
                             extra={"n_v": 64}, perturbation=1e-3),
            SimulationConfig(n_cells=32, n_steps=6, vth=0.05, v0=0.2, solver="vlasov",
                             extra={"n_v": 64}, scenario="landau_damping"),
        ]
        batched = harvest_vlasov_ensemble(configs, grid, n_particles=5000, stride=2)
        assert len(batched) == 2 * 4  # init + steps 2, 4, 6 per run, run-major
        offset = 0
        for cfg in configs:
            vcfg = vlasov_config_from(cfg)
            sim = VlasovSimulation(vcfg, f0=load_distribution(cfg))
            solo_inputs = [expected_counts(sim.f, vcfg, grid, 5000)]
            solo_targets = [sim.efield.copy()]
            for i in range(1, 7):
                sim.step()
                if i % 2 == 0:
                    solo_inputs.append(expected_counts(sim.f, vcfg, grid, 5000))
                    solo_targets.append(sim.efield.copy())
            for k in range(4):
                np.testing.assert_array_equal(batched.inputs[offset + k], solo_inputs[k])
                np.testing.assert_array_equal(batched.targets[offset + k], solo_targets[k])
            assert batched.params[offset, 2] == -1.0  # deterministic-run sentinel
            offset += 4


class TestLandauDamping:
    def test_langmuir_wave_landau_damping(self):
        """Beyond-paper validation: a Maxwellian plasma Landau-damps a
        seeded Langmuir wave at close to the kinetic-theory rate.

        For k*lambda_D = 0.5 linear theory gives omega ~ 1.4156 and
        gamma ~ -0.1533; the envelope fit includes the initial
        transient, so tolerances are generous."""
        from scipy.signal import argrelmax

        k = 0.5
        cfg = VlasovConfig(
            box_length=2 * np.pi / k, n_x=64, n_v=256, v_min=-6.0, v_max=6.0,
            dt=0.05, n_steps=400, v0=1e-12, vth=1.0, perturbation=0.01,
        )
        sim = VlasovSimulation(cfg)
        h = sim.run(400)
        e1, t = h["mode1"], h["time"]
        peaks = argrelmax(e1, order=3)[0]
        peaks = peaks[t[peaks] < 15.0]
        assert peaks.size >= 4
        gamma = np.polyfit(t[peaks], np.log(e1[peaks]), 1)[0]
        assert gamma == pytest.approx(-0.1533, rel=0.35)
        # |E1| peaks twice per oscillation period.
        omega = 2 * np.pi / (2 * np.mean(np.diff(t[peaks])))
        assert omega == pytest.approx(1.4156, rel=0.05)
